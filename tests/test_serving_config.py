"""Tests for the unified ServingConfig construction surface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, serving_config_from_args
from repro.community.config import DEFAULT_COMMUNITY
from repro.core.policy import RECOMMENDED_POLICY, RankPromotionPolicy
from repro.robustness.occ import RetryPolicy
from repro.serving.config import ServingConfig, build_router
from repro.serving.router import ShardedRouter
from repro.serving.workload import StreamingWorkload, run_stream


class TestServingConfig:
    def test_defaults_validate(self):
        config = ServingConfig()
        assert config.policy() == RankPromotionPolicy("selective", 1, 0.1)
        assert config.retry_policy() == RetryPolicy()
        assert config.community().n_pages == config.n_pages

    def test_json_round_trip(self):
        config = ServingConfig(
            n_pages=1_234,
            n_shards=3,
            mode="stochastic",
            policy_rule="uniform",
            policy_k=2,
            policy_r=0.25,
            cache_capacity=None,
            staleness_budget=7,
            seed=99,
            tenants=4,
            workers=2,
            clients=3,
            inbox_capacity=5,
            max_attempts=2,
            backoff_base=1e-3,
        )
        restored = ServingConfig.from_json(config.to_json())
        assert restored == config
        payload = json.loads(config.to_json())
        assert payload["n_pages"] == 1_234
        assert payload["cache_capacity"] is None

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ServingConfig fields"):
            ServingConfig.from_dict({"n_pages": 10, "warp_factor": 9})

    def test_replace_revalidates(self):
        config = ServingConfig(n_pages=100)
        assert config.replace(n_shards=2).n_shards == 2
        with pytest.raises(ValueError, match="n_shards must be >= 1"):
            config.replace(n_shards=0)

    @pytest.mark.parametrize(
        "field, value, message",
        [
            ("n_pages", 0, "n_pages must be >= 1"),
            ("n_shards", 0, "n_shards must be >= 1"),
            ("mode", "plasma", "mode must be one of"),
            ("cache_capacity", 0, "cache_capacity must be >= 1 or None"),
            ("staleness_budget", -1, "staleness_budget must be non-negative"),
            ("feedback_rate", 1.5, "feedback_rate must be in"),
            ("tenants", 0, "tenants must be >= 1"),
            ("workers", -1, "workers must be non-negative"),
            ("clients", -1, "clients must be non-negative"),
            ("inbox_capacity", 0, "inbox_capacity must be >= 1"),
            ("max_attempts", 0, "max_attempts must be a positive integer"),
        ],
    )
    def test_validation_messages(self, field, value, message):
        with pytest.raises(ValueError, match=message):
            ServingConfig(**{field: value})


class TestBuildRouter:
    def test_matches_from_community_bit_for_bit(self):
        community = DEFAULT_COMMUNITY.scaled(600)
        config = ServingConfig(
            n_pages=600, n_shards=3, cache_capacity=16, staleness_budget=2, seed=5
        )
        via_config = build_router(config)
        via_shim = ShardedRouter.from_community(
            community,
            RECOMMENDED_POLICY,
            n_shards=3,
            cache_capacity=16,
            staleness_budget=2,
            seed=5,
        )
        for new_engine, old_engine in zip(via_config.engines, via_shim.engines, strict=True):
            assert np.array_equal(new_engine.state.quality, old_engine.state.quality)
        stats_config = run_stream(
            via_config, 300, workload=StreamingWorkload(seed=11)
        )
        stats_shim = run_stream(via_shim, 300, workload=StreamingWorkload(seed=11))
        assert stats_config.feedback_events == stats_shim.feedback_events
        for new_engine, old_engine in zip(via_config.engines, via_shim.engines, strict=True):
            assert np.array_equal(
                new_engine.state.pool.aware_count, old_engine.state.pool.aware_count
            )
            assert new_engine.state.version == old_engine.state.version

    def test_shim_keeps_policy_identity(self):
        policy = RankPromotionPolicy("uniform", 2, 0.3)
        router = ShardedRouter.from_community(
            DEFAULT_COMMUNITY.scaled(200), policy, n_shards=2, seed=0
        )
        assert all(engine.policy is policy for engine in router.engines)

    def test_shim_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        router = ShardedRouter.from_community(
            DEFAULT_COMMUNITY.scaled(200), RECOMMENDED_POLICY, n_shards=2, seed=seq
        )
        assert router.n_shards == 2

    def test_retry_policy_lands_on_router(self):
        config = ServingConfig(
            n_pages=100, n_shards=1, max_attempts=2, backoff_base=1e-3
        )
        router = build_router(config)
        assert router.retry_policy.max_attempts == 2
        assert router.retry_policy.base_backoff_seconds == 1e-3

    def test_telemetry_attaches(self):
        from repro.telemetry import TelemetryRecorder

        recorder = TelemetryRecorder(n_shards=2, window=64)
        config = ServingConfig(n_pages=400, n_shards=2)
        router = build_router(config, telemetry=recorder)
        assert router.telemetry is recorder
        assert all(engine.telemetry is recorder for engine in router.engines)

    def test_states_must_cover_all_shards(self):
        config = ServingConfig(n_pages=400, n_shards=2)
        with pytest.raises(ValueError, match="one state per shard"):
            build_router(config, states=[None])

    def test_shard_count_cannot_exceed_pages(self):
        config = ServingConfig(n_pages=200, n_shards=300)
        with pytest.raises(ValueError, match="cannot exceed n_pages"):
            build_router(config, community=DEFAULT_COMMUNITY.scaled(200))


class TestRouterRobustnessState:
    def test_created_in_one_place_and_delegated(self):
        router = build_router(ServingConfig(n_pages=400, n_shards=2))
        assert router.supervisors is None
        assert router.occ_conflicts == 0
        assert router.retry_policy is router.robustness.retry_policy
        assert router.dead_letters is router.robustness.dead_letters
        router.occ_conflicts = 3
        assert router.robustness.occ_conflicts == 3

    def test_enable_disable_round_trip(self):
        router = build_router(ServingConfig(n_pages=400, n_shards=2))
        retry = RetryPolicy(max_attempts=2)
        router.enable_robustness(retry=retry, seed=1)
        assert router.retry_policy is retry
        assert router.supervisors is not None and len(router.supervisors) == 2
        router.disable_robustness()
        assert router.supervisors is None


class TestCliServingConfig:
    def parse(self, argv):
        return build_parser().parse_args(["serve-bench", *argv])

    def test_defaults_build_in_process_config(self):
        config = serving_config_from_args(self.parse([]))
        assert config.workers == 0
        assert config.tenants == 1
        assert config.clients == 0
        assert config.n_pages == 20_000
        assert config.max_attempts == RetryPolicy().max_attempts

    def test_flags_land_in_config(self):
        args = self.parse(
            [
                "--pages", "2000",
                "--shards", "2",
                "--cache-size", "0",
                "--staleness-budget", "6",
                "--tenants", "8",
                "--clients", "4",
                "--workers", "4",
                "--inbox-capacity", "3",
                "--max-attempts", "2",
                "--backoff-base", "0.001",
                "--seed", "9",
            ]
        )
        config = serving_config_from_args(args)
        assert config.n_pages == 2000
        assert config.n_shards == 2
        assert config.cache_capacity is None
        assert config.staleness_budget == 6
        assert config.tenants == 8
        assert config.clients == 4
        assert config.workers == 4
        assert config.inbox_capacity == 3
        assert config.max_attempts == 2
        assert config.backoff_base == 0.001
        assert config.seed == 9

    def test_overrides_win(self):
        config = serving_config_from_args(self.parse([]), mode="stochastic")
        assert config.mode == "stochastic"

    def test_shared_flags_reach_every_serving_experiment(self):
        parser = build_parser()
        for experiment in ("serve-bench", "chaos-bench", "sweep-bench", "sweep-fig"):
            args = parser.parse_args(
                [experiment, "--tenants", "2", "--clients", "1", "--workers", "2"]
            )
            assert (args.tenants, args.clients, args.workers) == (2, 1, 2)
