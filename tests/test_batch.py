"""Tests for the vectorized batch simulation engine and its parity contract.

The batch engine's promise is strong: replicate ``r`` of a batch run is
*bit-identical* to sequential repetition ``r`` at equal seeds, because both
consume the same ``spawn_rngs`` stream in the same order.  These tests pin
that down in fluid mode (the acceptance contract), check stochastic-mode
statistical consistency, exercise the custom-ranker fallback path, and
verify the batched merge/order kernels against their sequential references
by brute force.
"""

import numpy as np
import pytest

from repro.community import BatchPagePool, CommunityConfig, PagePool
from repro.community.page import awareness_gain, awareness_gain_batch
from repro.core.batch_rank import (
    batched_deterministic_order,
    batched_merge_counts,
    batched_promotion_merge,
)
from repro.core.merge import merge_positions
from repro.core.policy import RankPromotionPolicy
from repro.core.promotion import PromotionRule
from repro.core.rankers import (
    PopularityRanker,
    RandomizedPromotionRanker,
    Ranker,
    _deterministic_order,
)
from repro.core.rankers_context import BatchRankingContext, RankingContext
from repro.simulation import BatchSimulator, SimulationConfig, Simulator, run_batch
from repro.simulation.bench import run_simulation_benchmark
from repro.simulation.runner import _run_replicates, measure_qpc
from repro.utils.rng import spawn_rngs
from repro.visits.attention import PowerLawAttention


@pytest.fixture
def batch_community():
    return CommunityConfig(
        n_pages=150,
        n_users=30,
        monitored_fraction=0.25,
        visits_per_user_per_day=1.0,
        expected_lifetime_days=40.0,
    )


def _paired_results(community, policy, config, repetitions=3, seed=11):
    sequential = _run_replicates(
        community, policy, config, repetitions=repetitions, seed=seed,
        engine="sequential",
    )
    batch = _run_replicates(
        community, policy, config, repetitions=repetitions, seed=seed,
        engine="batch",
    )
    return sequential, batch


class TestFluidParity:
    """Fluid mode: the batch path is bit-identical replicate-for-replicate."""

    @pytest.mark.parametrize(
        "rule,k,r",
        [("selective", 1, 0.1), ("uniform", 2, 0.2), ("none", 1, 0.0)],
    )
    def test_qpc_bit_identical(self, batch_community, rule, k, r):
        config = SimulationConfig(warmup_days=25, measure_days=25, mode="fluid")
        sequential, batch = _paired_results(
            batch_community, RankPromotionPolicy(rule, k, r), config
        )
        for seq_result, batch_result in zip(sequential, batch, strict=True):
            assert seq_result.qpc_absolute == batch_result.qpc_absolute
            assert seq_result.qpc_normalized == batch_result.qpc_normalized
            assert np.array_equal(seq_result.quality, batch_result.quality)
            assert np.array_equal(
                seq_result.final_awareness, batch_result.final_awareness
            )

    def test_probe_trajectories_bit_identical(self, batch_community):
        config = SimulationConfig(
            warmup_days=20, measure_days=20, mode="fluid",
            probe_quality=0.4, probe_horizon_days=30,
        )
        sequential, batch = _paired_results(
            batch_community, RankPromotionPolicy("selective", 1, 0.2), config
        )
        for seq_result, batch_result in zip(sequential, batch, strict=True):
            assert np.array_equal(
                seq_result.probe_trajectory, batch_result.probe_trajectory
            )
            assert seq_result.tbp_days == batch_result.tbp_days

    @pytest.mark.parametrize("mode", ["fluid", "stochastic"])
    def test_mixed_surfing_bit_identical(self, batch_community, mode):
        from repro.visits.surfing import MixedSurfingModel

        surfing = MixedSurfingModel(surfing_fraction=0.4)
        config = SimulationConfig(warmup_days=20, measure_days=20, mode=mode)
        sequential = _run_replicates(
            batch_community, RankPromotionPolicy("selective", 1, 0.1), config,
            surfing=surfing, repetitions=3, seed=13, engine="sequential",
        )
        batch = _run_replicates(
            batch_community, RankPromotionPolicy("selective", 1, 0.1), config,
            surfing=surfing, repetitions=3, seed=13, engine="batch",
        )
        for seq_result, batch_result in zip(sequential, batch, strict=True):
            assert seq_result.qpc_absolute == batch_result.qpc_absolute
            assert np.array_equal(
                seq_result.final_awareness, batch_result.final_awareness
            )

    def test_surfing_shares_batch_matches_rows(self, rng):
        from repro.visits.surfing import MixedSurfingModel

        model = MixedSurfingModel(surfing_fraction=0.3, teleportation=0.2)
        popularity = rng.random((5, 40))
        popularity[2, :] = 0.0  # zero-total row collapses to pure teleport
        batch = model.surfing_shares_batch(popularity)
        for row in range(5):
            assert np.array_equal(batch[row], model.surfing_shares(popularity[row]))

    def test_measure_qpc_engine_equality(self, batch_community):
        policy = RankPromotionPolicy("selective", 1, 0.1)
        config = SimulationConfig(warmup_days=20, measure_days=20, mode="fluid")
        by_batch = measure_qpc(batch_community, policy, config,
                               repetitions=3, seed=5, engine="batch")
        by_loop = measure_qpc(batch_community, policy, config,
                              repetitions=3, seed=5, engine="sequential")
        assert by_batch == by_loop

    def test_invalid_engine_rejected(self, batch_community):
        with pytest.raises(ValueError):
            measure_qpc(batch_community, RankPromotionPolicy("none", 1, 0.0),
                        engine="turbo")


class TestStochasticConsistency:
    """Stochastic mode: batch sampling is statistically consistent."""

    def test_qpc_mean_within_tolerance(self, batch_community):
        policy = RankPromotionPolicy("selective", 1, 0.1)
        config = SimulationConfig(warmup_days=30, measure_days=30, mode="stochastic")
        sequential, batch = _paired_results(
            batch_community, policy, config, repetitions=4, seed=21
        )
        seq_mean = np.mean([r.qpc_absolute for r in sequential])
        batch_mean = np.mean([r.qpc_absolute for r in batch])
        assert batch_mean == pytest.approx(seq_mean, rel=0.05)

    def test_draws_actually_identical(self, batch_community):
        # Stronger than required: the batch engine consumes each replicate's
        # stream exactly like the sequential engine, so even stochastic mode
        # is draw-for-draw identical.
        policy = RankPromotionPolicy("uniform", 1, 0.15)
        config = SimulationConfig(warmup_days=20, measure_days=20, mode="stochastic")
        sequential, batch = _paired_results(
            batch_community, policy, config, repetitions=3, seed=8
        )
        for seq_result, batch_result in zip(sequential, batch, strict=True):
            assert np.array_equal(
                seq_result.final_awareness, batch_result.final_awareness
            )


class _ReverseQualityRanker(Ranker):
    """A custom ranker that only implements the sequential interface."""

    def rank(self, context, rng=None):
        # Worst-first oracle plus one generator draw, to check the fallback
        # threads each row's generator through.
        noise = np.asarray(rng.random(context.n))
        return np.lexsort((noise, context.quality))


class _EveryThirdRule(PromotionRule):
    """A custom promotion rule without a vectorized select_batch."""

    def select(self, context, rng=None):
        mask = np.zeros(context.n, dtype=bool)
        mask[::3] = True
        return mask


class TestFallbackPaths:
    def test_custom_ranker_matches_sequential(self, batch_community):
        config = SimulationConfig(warmup_days=10, measure_days=10, mode="fluid")
        rngs_batch = spawn_rngs(3, 3)
        rngs_seq = spawn_rngs(3, 3)
        batch = BatchSimulator(
            batch_community, _ReverseQualityRanker(), config, rngs=rngs_batch
        ).run()
        for row, rng in enumerate(rngs_seq):
            sequential = Simulator(
                batch_community, _ReverseQualityRanker(), config.with_seed(rng)
            ).run()
            assert sequential.qpc_absolute == batch[row].qpc_absolute

    def test_custom_promotion_rule_matches_sequential(self, batch_community):
        ranker = RandomizedPromotionRanker(_EveryThirdRule(), k=1, r=0.3)
        config = SimulationConfig(warmup_days=10, measure_days=10, mode="fluid")
        batch = BatchSimulator(
            batch_community, ranker, config, rngs=spawn_rngs(4, 2)
        ).run()
        for row, rng in enumerate(spawn_rngs(4, 2)):
            sequential = Simulator(
                batch_community, ranker, config.with_seed(rng)
            ).run()
            assert sequential.qpc_absolute == batch[row].qpc_absolute


class TestBatchedOrderKernel:
    @pytest.mark.parametrize("tie_breaker", ["random", "age", "index"])
    def test_matches_sequential_order(self, tie_breaker, rng):
        R, n = 6, 60
        # Heavy ties: quantized scores collide across and within rows.
        scores = np.round(rng.random((R, n)), 1)
        scores[:, ::7] = 0.0
        ages = rng.integers(0, 5, size=(R, n)).astype(float)
        batch_rngs = [np.random.default_rng(100 + i) for i in range(R)]
        seq_rngs = [np.random.default_rng(100 + i) for i in range(R)]
        perms = batched_deterministic_order(scores, ages, tie_breaker, batch_rngs)
        for row in range(R):
            expected = _deterministic_order(
                scores[row], ages[row], tie_breaker, seq_rngs[row]
            )
            assert np.array_equal(perms[row], expected)

    def test_age_tie_break_without_ages_matches_sequential(self):
        # Sequential substitutes zero ages when the context has none; the
        # batched order must mirror that rather than erroring.
        scores = np.tile(np.array([0.2, 0.2, 0.5, 0.2]), (2, 1))
        perms = batched_deterministic_order(scores, None, "age", [])
        for row in range(2):
            expected = _deterministic_order(scores[row], None, "age")
            assert np.array_equal(perms[row], expected)

    def test_all_equal_scores(self):
        scores = np.zeros((3, 40))
        batch_rngs = [np.random.default_rng(i) for i in range(3)]
        seq_rngs = [np.random.default_rng(i) for i in range(3)]
        perms = batched_deterministic_order(scores, None, "random", batch_rngs)
        for row in range(3):
            expected = _deterministic_order(scores[row], None, "random", seq_rngs[row])
            assert np.array_equal(perms[row], expected)

    def test_unknown_tie_breaker_rejected(self):
        with pytest.raises(ValueError):
            batched_deterministic_order(np.zeros((1, 4)), None, "sideways", [])

    def test_deterministic_order_requires_rng(self):
        with pytest.raises(ValueError):
            _deterministic_order(np.arange(4.0), None, "random", None)


class TestBatchedMergeKernel:
    def test_merge_counts_match_merge_positions(self):
        rng = np.random.default_rng(0)
        for _trial in range(200):
            n = int(rng.integers(1, 40))
            n_promoted = int(rng.integers(0, n + 1))
            k = int(rng.integers(1, n + 2))
            r = float(rng.random())
            seed = int(rng.integers(0, 2**31))
            expected = merge_positions(
                n, n_promoted, k, r, np.random.default_rng(seed)
            )
            # Rebuild the flip matrix exactly as the batch kernel would.
            generator = np.random.default_rng(seed)
            n_det = n - n_promoted
            taken = min(k - 1, n_det)
            flips = np.zeros((1, n), dtype=bool)
            if n_promoted > 0 and taken < n and n_det - taken > 0:
                flips[0, taken:] = generator.random(n - taken) < r
            counts = batched_merge_counts(
                flips, np.array([n_det]), np.array([n_promoted])
            )
            slots = np.diff(counts, axis=1, prepend=0)[0] > 0
            assert np.array_equal(slots, expected), (n, n_promoted, k, r)

    def test_promotion_merge_matches_sequential_ranker(self, rng):
        # Full ranker-level comparison across many random pool shapes.
        for _trial in range(25):
            n = int(rng.integers(5, 80))
            popularity = np.round(rng.random(n), 2)
            awareness = rng.random(n)
            k = int(rng.integers(1, 4))
            r = float(rng.uniform(0.05, 0.9))
            ranker = RandomizedPromotionRanker(_EveryThirdRule(), k=k, r=r)
            context_row = RankingContext(
                popularity=popularity, awareness=awareness
            )
            batch_context = BatchRankingContext(
                popularity=popularity[None, :], awareness=awareness[None, :]
            )
            seed = int(rng.integers(0, 2**31))
            expected = ranker.rank(context_row, np.random.default_rng(seed))
            got = ranker.rank_batch(batch_context, [np.random.default_rng(seed)])
            assert np.array_equal(got[0], expected), (n, k, r)


class TestBatchPagePool:
    def test_from_config_matches_sequential_pools(self, batch_community):
        batch = BatchPagePool.from_config(batch_community, spawn_rngs(9, 3))
        for row, rng in enumerate(spawn_rngs(9, 3)):
            single = PagePool.from_config(batch_community, rng)
            assert np.array_equal(batch.quality[row], single.quality)
        assert batch.replicates == 3
        assert batch.n == batch_community.n_pages

    def test_replace_row_pages_bookkeeping(self, batch_community):
        pool = BatchPagePool.from_config(batch_community, spawn_rngs(0, 2))
        pool.aware_count[0, :] = 3.0
        replaced = pool.replace_row_pages(0, np.array([1, 4]), now=7.0)
        assert np.array_equal(replaced, [1, 4])
        assert pool.aware_count[0, 1] == 0.0
        assert pool.created_at[0, 4] == 7.0
        n = pool.n
        assert pool.page_ids[0, 1] == n and pool.page_ids[0, 4] == n + 1
        # Row 1 untouched, with its own id counter.
        assert pool.page_ids[1, 1] == 1

    def test_awareness_gain_batch_matches_rows(self, rng):
        aware = rng.random((4, 30)) * 5
        visits = rng.integers(0, 3, size=(4, 30)).astype(float)
        batch_rngs = [np.random.default_rng(50 + i) for i in range(4)]
        seq_rngs = [np.random.default_rng(50 + i) for i in range(4)]
        batch = awareness_gain_batch(aware, 10, visits, "stochastic", batch_rngs)
        for row in range(4):
            expected = awareness_gain(aware[row], 10, visits[row], "stochastic",
                                      seq_rngs[row])
            assert np.array_equal(batch[row], expected)


class TestProcessPoolSharding:
    def test_sharded_run_matches_in_process(self, batch_community):
        config = SimulationConfig(warmup_days=8, measure_days=8, mode="fluid")
        ranker = RankPromotionPolicy("selective", 1, 0.1).build_ranker()
        in_process = run_batch(
            batch_community, ranker, config, rngs=spawn_rngs(2, 4)
        )
        sharded = run_batch(
            batch_community, ranker, config, rngs=spawn_rngs(2, 4), n_workers=2
        )
        assert [r.qpc_absolute for r in sharded] == [
            r.qpc_absolute for r in in_process
        ]


class TestAttentionShareCache:
    def test_visit_shares_cached_and_readonly(self):
        model = PowerLawAttention()
        first = model.visit_shares(64)
        second = model.visit_shares(64)
        assert first is second
        assert not first.flags.writeable
        assert first.sum() == pytest.approx(1.0)

    def test_distinct_models_not_conflated(self):
        a = PowerLawAttention(exponent=1.5).visit_shares(32)
        b = PowerLawAttention(exponent=1.0).visit_shares(32)
        assert not np.array_equal(a, b)


class TestBenchmarkHelper:
    def test_report_keys_and_parity(self, batch_community):
        report = run_simulation_benchmark(
            community=batch_community,
            replicates=4,
            baseline_replicates=2,
            warmup_days=5,
            measure_days=5,
            seed=0,
        )
        assert report["parity_bit_identical"] == 1.0
        assert report["pagedays_per_second_batch"] > 0
        assert report["speedup_batch_vs_sequential"] > 0
