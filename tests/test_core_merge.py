"""Tests for the randomized merge procedure (Section 4)."""

import numpy as np
import pytest

from repro.core.merge import merge_positions, randomized_merge


class TestMergePositions:
    def test_counts_match(self):
        slots = merge_positions(100, 25, k=1, r=0.3, rng=0)
        assert slots.sum() == 25
        assert slots.size == 100

    def test_protected_prefix_never_promoted(self):
        for seed in range(20):
            slots = merge_positions(50, 20, k=10, r=0.9, rng=seed)
            assert not slots[:9].any()

    def test_zero_promoted(self):
        assert merge_positions(10, 0, k=1, r=0.5, rng=0).sum() == 0

    def test_all_promoted(self):
        slots = merge_positions(10, 10, k=3, r=0.5, rng=0)
        assert slots.sum() == 10

    def test_r_zero_pushes_promoted_to_bottom(self):
        slots = merge_positions(20, 5, k=1, r=0.0, rng=0)
        assert slots[:15].sum() == 0
        assert slots[15:].all()

    def test_r_one_places_promoted_right_after_prefix(self):
        slots = merge_positions(20, 5, k=4, r=1.0, rng=0)
        assert not slots[:3].any()
        assert slots[3:8].all()
        assert not slots[8:].any()

    def test_expected_density_near_r(self):
        # With a large pool, the fraction of early slots drawn from the
        # promotion list should be close to r.
        slots = merge_positions(20_000, 10_000, k=1, r=0.25, rng=0)
        early = slots[:5_000]
        assert 0.22 < early.mean() < 0.28

    def test_k_larger_than_list(self):
        slots = merge_positions(5, 2, k=50, r=0.9, rng=0)
        assert slots.sum() == 2
        assert slots[3:].all()

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            merge_positions(5, 6, k=1, r=0.5)
        with pytest.raises(ValueError):
            merge_positions(5, 2, k=0, r=0.5)
        with pytest.raises(ValueError):
            merge_positions(5, 2, k=1, r=1.5)


class TestRandomizedMerge:
    def test_result_is_permutation(self):
        deterministic = np.arange(0, 80)
        promoted = np.arange(80, 100)
        merged = randomized_merge(deterministic, promoted, k=2, r=0.3, rng=0)
        assert sorted(merged.tolist()) == list(range(100))

    def test_deterministic_order_preserved(self):
        deterministic = np.arange(0, 90)
        promoted = np.arange(90, 100)
        merged = randomized_merge(deterministic, promoted, k=1, r=0.4, rng=1)
        deterministic_positions = [x for x in merged if x < 90]
        assert deterministic_positions == sorted(deterministic_positions)

    def test_top_k_minus_one_protected(self):
        deterministic = np.arange(0, 90)
        promoted = np.arange(90, 100)
        for seed in range(10):
            merged = randomized_merge(deterministic, promoted, k=5, r=0.9, rng=seed)
            assert merged[:4].tolist() == [0, 1, 2, 3]

    def test_promoted_shuffled(self):
        deterministic = np.arange(0, 10)
        promoted = np.arange(10, 60)
        merged = randomized_merge(deterministic, promoted, k=1, r=1.0, rng=3)
        promoted_order = [x for x in merged if x >= 10]
        assert promoted_order != sorted(promoted_order)

    def test_no_shuffle_option(self):
        deterministic = np.arange(0, 5)
        promoted = np.arange(5, 10)
        merged = randomized_merge(deterministic, promoted, k=1, r=1.0, rng=3,
                                  shuffle_promoted=False)
        promoted_order = [x for x in merged if x >= 5]
        assert promoted_order == sorted(promoted_order)

    def test_overlapping_lists_rejected(self):
        with pytest.raises(ValueError):
            randomized_merge(np.array([1, 2]), np.array([2, 3]), k=1, r=0.5)

    def test_empty_promotion_pool(self):
        deterministic = np.arange(10)
        merged = randomized_merge(deterministic, np.array([], dtype=int), k=1, r=0.5, rng=0)
        assert merged.tolist() == list(range(10))

    def test_empty_deterministic_list(self):
        promoted = np.arange(10)
        merged = randomized_merge(np.array([], dtype=int), promoted, k=1, r=0.5, rng=0)
        assert sorted(merged.tolist()) == list(range(10))

    def test_reproducible_with_seed(self):
        deterministic = np.arange(0, 50)
        promoted = np.arange(50, 70)
        a = randomized_merge(deterministic, promoted, k=1, r=0.3, rng=42)
        b = randomized_merge(deterministic, promoted, k=1, r=0.3, rng=42)
        assert np.array_equal(a, b)
