"""Tests for the AST contract linter (repro.contracts).

Three layers:

* fixture-driven rule tests — every file rule has a firing, a clean and
  a suppressed fixture under ``tests/fixtures/contracts/<rule-id>/``;
  the rule must flag the first, stay quiet on the second, and mark the
  third suppressed (never active);
* project-rule tests over synthetic temp trees (telemetry schema
  lockfile, bench floor keys);
* end-to-end checks — the repository itself lints clean, the CLI's
  injected-violation self-test still catches corrupted state code, the
  cache round-trips, and the CLI surfaces findings with exit code 1.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.contracts import FILE_RULES, PROJECT_RULES, check_file, lint_paths
from repro.contracts.cache import ResultCache, content_key
from repro.contracts.cli import main as cli_main
from repro.contracts.cli import run_self_test
from repro.contracts.core import (
    Finding,
    apply_suppressions,
    check_project,
    parse_suppressions,
)
from repro.contracts.rules.telemetry_lock import (
    LOCKFILE_REL,
    RECORDER_REL,
    read_base_fields,
    read_lockfile,
    write_lockfile,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "contracts"

#: rule id -> repo-relative path the fixture pretends to live at (so the
#: rule's path scoping applies to it).
FIXTURE_REL = {
    "no-unseeded-rng": "src/repro/example.py",
    "no-wall-clock-in-kernels": "src/repro/core/example.py",
    "numba-backend-purity": "src/repro/core/kernels/example.py",
    "occ-write-discipline": "src/repro/serving/state.py",
    "frozen-config-mutation": "src/repro/serving/example.py",
    "kernel-registry-discipline": "src/repro/serving/example.py",
}

#: Minimum active findings each firing fixture must produce (each fixture
#: exercises several distinct trigger shapes).
FIRING_MINIMUM = {
    "no-unseeded-rng": 4,
    "no-wall-clock-in-kernels": 5,
    "numba-backend-purity": 4,
    "occ-write-discipline": 5,
    "frozen-config-mutation": 5,
    "kernel-registry-discipline": 3,
}


def run_fixture(rule_id, name):
    path = FIXTURES / rule_id / name
    return check_file(
        path, REPO_ROOT, rel=FIXTURE_REL[rule_id], rule_ids=[rule_id]
    )


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_REL))
    def test_firing_fixture_fires(self, rule_id):
        findings = run_fixture(rule_id, "firing.py")
        active = [f for f in findings if not f.suppressed and f.rule == rule_id]
        assert len(active) >= FIRING_MINIMUM[rule_id], [f.render() for f in findings]

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_REL))
    def test_clean_fixture_is_quiet(self, rule_id):
        findings = run_fixture(rule_id, "clean.py")
        assert findings == [], [f.render() for f in findings]

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_REL))
    def test_suppressed_fixture_is_silenced_with_reason(self, rule_id):
        findings = run_fixture(rule_id, "suppressed.py")
        active = [f for f in findings if not f.suppressed]
        suppressed = [f for f in findings if f.suppressed]
        assert active == [], [f.render() for f in active]
        assert suppressed, "suppressed fixture must still produce the finding"
        assert all(f.reason for f in suppressed)

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_REL))
    def test_rule_out_of_scope_path_is_ignored(self, rule_id):
        path = FIXTURES / rule_id / "firing.py"
        findings = check_file(
            path, REPO_ROOT, rel="benchmarks/example.py", rule_ids=[rule_id]
        )
        assert findings == []

    def test_every_shipped_rule_has_fixtures(self):
        assert set(FIXTURE_REL) == set(FILE_RULES)
        for rule_id in FIXTURE_REL:
            for name in ("firing.py", "clean.py", "suppressed.py"):
                assert (FIXTURES / rule_id / name).is_file()

    def test_registry_is_complete(self):
        assert set(PROJECT_RULES) == {
            "telemetry-schema-append-only",
            "bench-extra-info-keys",
        }


class TestSuppressions:
    def test_reasonless_suppression_is_itself_a_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import numpy as np\n"
            "rng = np.random.default_rng()  # contracts: ignore[no-unseeded-rng]\n"
        )
        findings = check_file(bad, tmp_path, rel="src/repro/bad.py")
        rules = {f.rule for f in findings if not f.suppressed}
        assert "bad-suppression" in rules
        # The reasonless comment silences nothing: the violation stays active.
        assert "no-unseeded-rng" in rules

    def test_wildcard_and_multi_rule_lists(self):
        sups = parse_suppressions(
            "x = 1  # contracts: ignore[*] -- everything\n"
            "y = 2  # contracts: ignore[a-rule, b-rule] -- both\n"
        )
        assert sups[0].covers("anything-at-all")
        assert sups[1].covers("a-rule") and sups[1].covers("b-rule")
        assert not sups[1].covers("c-rule")

    def test_own_line_comment_covers_next_line_only(self):
        source = (
            "# contracts: ignore[some-rule] -- covered below\n"
            "a = 1\n"
            "b = 2\n"
        )
        findings = [
            Finding(rule="some-rule", path="p", line=2, col=1, message="m"),
            Finding(rule="some-rule", path="p", line=3, col=1, message="m"),
        ]
        out = apply_suppressions(findings, parse_suppressions(source), "p")
        assert [f.suppressed for f in out] == [True, False]


def make_recorder(tmp_path, fields):
    recorder = tmp_path / RECORDER_REL
    recorder.parent.mkdir(parents=True, exist_ok=True)
    recorder.write_text("BASE_FIELDS = (%s)\n" % "".join("%r, " % f for f in fields))
    return recorder


class TestTelemetryLock:
    FIELDS = ("queries", "cache_hits", "flushes")

    def run_rule(self, root):
        return [
            f
            for f in check_project(root, [], rule_ids=["telemetry-schema-append-only"])
            if f.rule == "telemetry-schema-append-only"
        ]

    def lock(self, root, fields):
        lock = root / LOCKFILE_REL
        lock.parent.mkdir(parents=True, exist_ok=True)
        write_lockfile(lock, tuple(fields))

    def test_matching_lock_is_quiet(self, tmp_path):
        make_recorder(tmp_path, self.FIELDS)
        self.lock(tmp_path, self.FIELDS)
        assert self.run_rule(tmp_path) == []

    def test_missing_lockfile_is_flagged(self, tmp_path):
        make_recorder(tmp_path, self.FIELDS)
        findings = self.run_rule(tmp_path)
        assert len(findings) == 1 and "missing" in findings[0].message

    def test_reorder_and_rename_are_flagged_positionally(self, tmp_path):
        make_recorder(tmp_path, ("cache_hits", "queries", "flushes"))
        self.lock(tmp_path, self.FIELDS)
        messages = [f.message for f in self.run_rule(tmp_path)]
        assert len(messages) == 2  # positions 0 and 1 both moved
        assert all("append-only" in m for m in messages)

    def test_removal_is_flagged(self, tmp_path):
        make_recorder(tmp_path, self.FIELDS[:2])
        self.lock(tmp_path, self.FIELDS)
        findings = self.run_rule(tmp_path)
        assert len(findings) == 1 and "dropped" in findings[0].message

    def test_append_without_lock_refresh_is_flagged(self, tmp_path):
        make_recorder(tmp_path, self.FIELDS + ("repairs",))
        self.lock(tmp_path, self.FIELDS)
        findings = self.run_rule(tmp_path)
        assert len(findings) == 1 and "refreshed" in findings[0].message

    def test_append_plus_refresh_is_quiet(self, tmp_path):
        make_recorder(tmp_path, self.FIELDS + ("repairs",))
        self.lock(tmp_path, self.FIELDS + ("repairs",))
        assert self.run_rule(tmp_path) == []

    def test_repo_lockfile_matches_live_base_fields(self):
        live = read_base_fields(REPO_ROOT / RECORDER_REL)
        locked = read_lockfile(REPO_ROOT / LOCKFILE_REL)
        assert live == locked


class TestBenchKeys:
    def make_tree(self, tmp_path, floors, literals):
        floor = tmp_path / "benchmarks" / "baselines" / "bench-floor.json"
        floor.parent.mkdir(parents=True)
        floor.write_text(json.dumps({"benchmarks": {"bench": floors}}))
        src = tmp_path / "src" / "driver.py"
        src.parent.mkdir(parents=True)
        src.write_text(
            "KEYS = [%s]\n" % ", ".join(repr(lit) for lit in literals)
        )

    def run_rule(self, root):
        return check_project(root, [], rule_ids=["bench-extra-info-keys"])

    def test_known_keys_are_quiet(self, tmp_path):
        self.make_tree(tmp_path, {"speedup": 1.0}, ["speedup"])
        assert self.run_rule(tmp_path) == []

    def test_orphaned_key_is_flagged(self, tmp_path):
        self.make_tree(tmp_path, {"speedup": 1.0, "bogus_metric": 2.0}, ["speedup"])
        findings = self.run_rule(tmp_path)
        assert len(findings) == 1 and "bogus_metric" in findings[0].message

    def test_prefix_literal_covers_runtime_families(self, tmp_path):
        self.make_tree(tmp_path, {"qps_shard_3": 1.0}, ["qps_shard_"])
        assert self.run_rule(tmp_path) == []

    def test_repo_floor_keys_all_resolve(self):
        findings = check_project(REPO_ROOT, [], rule_ids=["bench-extra-info-keys"])
        assert findings == [], [f.render() for f in findings]


class TestEndToEnd:
    def test_repository_lints_clean(self):
        report = lint_paths([REPO_ROOT / "src"], REPO_ROOT, use_cache=False)
        assert report.active == [], [f.render() for f in report.active]
        # The one sanctioned suppression (journal replay rng) is present
        # and carries its rationale.
        assert any(
            f.rule == "no-unseeded-rng" and f.reason for f in report.suppressed
        )

    def test_self_test_catches_injected_violations(self):
        assert run_self_test(REPO_ROOT) == 0

    def test_injected_unlocked_store_is_rejected(self, tmp_path):
        source = (REPO_ROOT / "src/repro/serving/state.py").read_text()
        corrupted = tmp_path / "state.py"
        corrupted.write_text(
            source + "\n\ndef sneak(state):\n    state._header[0] = 99\n"
        )
        findings = check_file(
            corrupted, REPO_ROOT, rel="src/repro/serving/state.py"
        )
        assert any(
            f.rule == "occ-write-discipline" and not f.suppressed
            for f in findings
        )

    def test_syntax_error_reports_instead_of_crashing(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        findings = check_file(broken, tmp_path, rel="src/repro/broken.py")
        assert [f.rule for f in findings] == ["syntax-error"]


class TestCache:
    def test_second_run_is_served_from_cache(self, tmp_path):
        tree = tmp_path / "src"
        tree.mkdir()
        (tree / "mod.py").write_text("VALUE = 1\n")
        first = lint_paths([tree], tmp_path)
        second = lint_paths([tree], tmp_path)
        assert first.cached_files == 0
        assert second.cached_files == 1
        assert (tmp_path / ".contracts-cache.json").is_file()

    def test_content_change_invalidates(self, tmp_path):
        tree = tmp_path / "src"
        tree.mkdir()
        (tree / "mod.py").write_text("VALUE = 1\n")
        lint_paths([tree], tmp_path)
        (tree / "mod.py").write_text("VALUE = 2\n")
        report = lint_paths([tree], tmp_path)
        assert report.cached_files == 0

    def test_findings_round_trip_through_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        finding = Finding(
            rule="r", path="p", line=3, col=7, message="m",
            suppressed=True, reason="because",
        )
        key = content_key(b"data", ("*",))
        cache.put(key, [finding])
        cache.save()
        reloaded = ResultCache(tmp_path)
        assert reloaded.get(key) == [finding]

    def test_corrupt_cache_is_discarded(self, tmp_path):
        (tmp_path / ".contracts-cache.json").write_text("{not json")
        cache = ResultCache(tmp_path)
        assert cache.get(content_key(b"x", ("*",))) is None


class TestCli:
    def run_cli(self, *argv):
        return cli_main(list(argv))

    def test_list_rules_exits_zero(self, capsys):
        assert self.run_cli("--list-rules") == 0
        out = capsys.readouterr().out
        for rule_id in FILE_RULES:
            assert rule_id in out

    def test_unknown_rule_id_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            self.run_cli("--rules", "no-such-rule", "src")
        assert excinfo.value.code == 2

    def test_findings_exit_one_and_render_json(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        out_file = tmp_path / "report.json"
        code = self.run_cli(
            "--root", str(tmp_path), "--format", "json",
            "--output", str(out_file), "--no-cache", str(tmp_path / "src"),
        )
        assert code == 1
        payload = json.loads(out_file.read_text())
        assert payload["checked_files"] == 1
        assert [f["rule"] for f in payload["findings"]] == ["no-unseeded-rng"]

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "src" / "repro" / "good.py"
        good.parent.mkdir(parents=True)
        good.write_text("VALUE = 1\n")
        code = self.run_cli("--root", str(tmp_path), "--no-cache", str(tmp_path / "src"))
        assert code == 0

    def test_write_locks_round_trips(self, tmp_path, capsys):
        make_recorder(tmp_path, ("a", "b"))
        assert self.run_cli("--root", str(tmp_path), "--write-locks") == 0
        assert read_lockfile(tmp_path / LOCKFILE_REL) == ("a", "b")

    def test_module_entry_point_runs(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.contracts", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0
        assert "no-unseeded-rng" in result.stdout
