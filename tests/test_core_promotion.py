"""Tests for repro.core.promotion and RankingContext."""

import numpy as np
import pytest

from repro.core.promotion import (
    AgeThresholdPromotionRule,
    NoPromotionRule,
    PopularityThresholdPromotionRule,
    SelectivePromotionRule,
    UniformPromotionRule,
)
from repro.core.rankers_context import RankingContext


def make_context(awareness, quality=None, ages=None, m=10):
    awareness = np.asarray(awareness, dtype=float)
    quality = np.full_like(awareness, 0.5) if quality is None else np.asarray(quality)
    return RankingContext(
        popularity=awareness * quality,
        awareness=awareness,
        quality=quality,
        ages=ages,
        monitored_population=m,
    )


class TestRankingContext:
    def test_n(self):
        assert make_context([0.0, 0.1, 0.2]).n == 3

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RankingContext(popularity=np.zeros(3), awareness=np.zeros(2))

    def test_quality_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RankingContext(popularity=np.zeros(3), awareness=np.zeros(3),
                           quality=np.zeros(4))

    def test_from_pool(self, tiny_pool):
        context = RankingContext.from_pool(tiny_pool, now=5.0)
        assert context.n == tiny_pool.n
        assert context.monitored_population == tiny_pool.monitored_population
        assert np.allclose(context.ages, 5.0)


class TestNoPromotionRule:
    def test_selects_nothing(self):
        mask = NoPromotionRule().select(make_context([0.0, 0.5, 1.0]))
        assert not mask.any()


class TestUniformPromotionRule:
    def test_probability_zero_selects_nothing(self):
        mask = UniformPromotionRule(0.0).select(make_context(np.zeros(100)), rng=0)
        assert not mask.any()

    def test_probability_one_selects_all(self):
        mask = UniformPromotionRule(1.0).select(make_context(np.zeros(100)), rng=0)
        assert mask.all()

    def test_expected_fraction(self):
        mask = UniformPromotionRule(0.3).select(make_context(np.zeros(20_000)), rng=0)
        assert 0.27 < mask.mean() < 0.33

    def test_ignores_awareness(self):
        context = make_context(np.linspace(0, 1, 1000))
        mask = UniformPromotionRule(0.5).select(context, rng=0)
        # Promoted pages should appear across the awareness range.
        assert mask[:500].any() and mask[500:].any()

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            UniformPromotionRule(1.5)


class TestSelectivePromotionRule:
    def test_selects_only_zero_awareness(self):
        context = make_context([0.0, 0.1, 0.0, 0.9])
        mask = SelectivePromotionRule().select(context)
        assert mask.tolist() == [True, False, True, False]

    def test_fluid_fractional_awareness_below_one_user(self):
        # With m=10 monitored users, awareness 0.05 means half an expected
        # user — still "undiscovered" for the selective rule.
        context = make_context([0.05, 0.15], m=10)
        mask = SelectivePromotionRule().select(context)
        assert mask.tolist() == [True, False]

    def test_exactly_one_user_not_selected(self):
        context = make_context([0.1], m=10)
        assert not SelectivePromotionRule().select(context).any()

    def test_without_population_falls_back_to_zero_test(self):
        context = RankingContext(popularity=np.zeros(2), awareness=np.array([0.0, 0.01]))
        mask = SelectivePromotionRule().select(context)
        assert mask.tolist() == [True, False]


class TestAgeThresholdPromotionRule:
    def test_selects_young_pages(self):
        context = make_context([0.0, 0.0, 0.0], ages=np.array([5.0, 50.0, 10.0]))
        mask = AgeThresholdPromotionRule(max_age_days=20.0).select(context)
        assert mask.tolist() == [True, False, True]

    def test_requires_ages(self):
        with pytest.raises(ValueError):
            AgeThresholdPromotionRule().select(make_context([0.0]))


class TestPopularityThresholdPromotionRule:
    def test_selects_low_popularity(self):
        context = make_context([0.0, 0.5, 1.0], quality=[0.4, 0.4, 0.001])
        mask = PopularityThresholdPromotionRule(threshold=0.01).select(context)
        assert mask.tolist() == [True, False, True]


class TestDescriptions:
    @pytest.mark.parametrize(
        "rule",
        [
            NoPromotionRule(),
            UniformPromotionRule(0.2),
            SelectivePromotionRule(),
            AgeThresholdPromotionRule(),
            PopularityThresholdPromotionRule(),
        ],
        ids=lambda r: type(r).__name__,
    )
    def test_describe_nonempty(self, rule):
        assert rule.describe()
