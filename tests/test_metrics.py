"""Tests for repro.metrics: QPC, TBP and awareness statistics."""

import numpy as np
import pytest

from repro.metrics.awareness_stats import awareness_histogram, awareness_summary
from repro.metrics.qpc import QPCAccumulator, ideal_qpc, normalized_qpc, qpc_from_visits
from repro.metrics.tbp import tbp_from_trajectory, time_to_become_popular
from repro.visits.attention import UniformAttention


class TestQpcFromVisits:
    def test_weighted_mean(self):
        qpc = qpc_from_visits(np.array([3.0, 1.0]), np.array([0.4, 0.0]))
        assert qpc == pytest.approx(0.3)

    def test_no_visits_is_zero(self):
        assert qpc_from_visits(np.zeros(3), np.full(3, 0.5)) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            qpc_from_visits(np.zeros(3), np.zeros(2))

    def test_bounded_by_max_quality(self):
        visits = np.random.default_rng(0).random(50)
        quality = np.random.default_rng(1).random(50) * 0.4
        assert qpc_from_visits(visits, quality) <= 0.4


class TestIdealQpc:
    def test_single_page(self):
        assert ideal_qpc(np.array([0.3])) == pytest.approx(0.3)

    def test_uniform_attention_is_mean_quality(self):
        quality = np.array([0.1, 0.2, 0.3, 0.4])
        assert ideal_qpc(quality, UniformAttention()) == pytest.approx(0.25)

    def test_rank_bias_weights_best_pages(self):
        quality = np.array([*([0.0] * 9), 0.4])
        assert ideal_qpc(quality) > np.mean(quality)

    def test_independent_of_input_order(self):
        rng = np.random.default_rng(0)
        quality = rng.random(30)
        shuffled = rng.permutation(quality)
        assert ideal_qpc(quality) == pytest.approx(ideal_qpc(shuffled))


class TestNormalizedQpc:
    def test_ideal_gives_one(self):
        quality = np.linspace(0.01, 0.4, 20)
        ideal = ideal_qpc(quality)
        assert normalized_qpc(ideal, quality) == pytest.approx(1.0)

    def test_zero_absolute_gives_zero(self):
        assert normalized_qpc(0.0, np.array([0.1, 0.2])) == 0.0


class TestQPCAccumulator:
    def test_accumulates_multiple_steps(self):
        accumulator = QPCAccumulator()
        accumulator.update(np.array([1.0, 0.0]), np.array([0.4, 0.0]))
        accumulator.update(np.array([0.0, 1.0]), np.array([0.4, 0.0]))
        assert accumulator.value == pytest.approx(0.2)
        assert accumulator.steps == 2

    def test_empty_accumulator_value(self):
        assert QPCAccumulator().value == 0.0

    def test_merge(self):
        a = QPCAccumulator(weighted_quality=1.0, total_visits=4.0, steps=1)
        b = QPCAccumulator(weighted_quality=3.0, total_visits=6.0, steps=2)
        merged = a.merge(b)
        assert merged.value == pytest.approx(0.4)
        assert merged.steps == 3


class TestTbp:
    def test_crossing_interpolated(self):
        times = np.array([0.0, 10.0, 20.0])
        popularity = np.array([0.0, 0.2, 0.4])
        # Target 0.99 * 0.4 = 0.396, crossed between day 10 and 20.
        tbp = time_to_become_popular(times, popularity, quality=0.4)
        assert 19.0 < tbp < 20.0

    def test_never_crossing_returns_none(self):
        times = np.arange(5.0)
        popularity = np.full(5, 0.1)
        assert time_to_become_popular(times, popularity, quality=0.4) is None

    def test_immediate_crossing(self):
        times = np.array([0.0, 1.0])
        popularity = np.array([0.5, 0.5])
        assert time_to_become_popular(times, popularity, quality=0.4) == 0.0

    def test_custom_threshold(self):
        times = np.array([0.0, 10.0])
        popularity = np.array([0.0, 0.4])
        early = time_to_become_popular(times, popularity, 0.4, threshold=0.5)
        late = time_to_become_popular(times, popularity, 0.4, threshold=0.99)
        assert early < late

    def test_empty_trajectory(self):
        assert time_to_become_popular([], [], quality=0.4) is None

    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            time_to_become_popular([0.0], [0.1], quality=0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            time_to_become_popular([0.0, 1.0], [0.1], quality=0.4)

    def test_tbp_from_trajectory_uses_dt(self):
        trajectory = np.array([0.0, 0.1, 0.2, 0.4])
        daily = tbp_from_trajectory(trajectory, quality=0.4, dt=1.0)
        weekly = tbp_from_trajectory(trajectory, quality=0.4, dt=7.0)
        assert weekly == pytest.approx(7.0 * daily)


class TestAwarenessStats:
    def test_histogram_sums_to_one(self):
        awareness = np.random.default_rng(0).random(500)
        _, probabilities = awareness_histogram(awareness, bins=10)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_histogram_respects_weights(self):
        awareness = np.array([0.05, 0.95])
        _, probabilities = awareness_histogram(awareness, bins=2, weights=np.array([3.0, 1.0]))
        assert probabilities[0] == pytest.approx(0.75)

    def test_histogram_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            awareness_histogram(np.array([1.5]))

    def test_histogram_rejects_empty(self):
        with pytest.raises(ValueError):
            awareness_histogram(np.array([]))

    def test_summary_fields(self):
        awareness = np.array([0.0, 0.0, 1.0, 1.0])
        summary = awareness_summary(awareness)
        assert summary["mean"] == pytest.approx(0.5)
        assert summary["share_near_zero"] == pytest.approx(0.5)
        assert summary["share_near_full"] == pytest.approx(0.5)

    def test_summary_rejects_empty(self):
        with pytest.raises(ValueError):
            awareness_summary(np.array([]))
