"""Tests for repro.community.config."""

import pytest

from repro.community.config import DAYS_PER_YEAR, DEFAULT_COMMUNITY, CommunityConfig
from repro.community.quality import PointMassQualityDistribution


class TestDefaults:
    def test_paper_default_sizes(self):
        assert DEFAULT_COMMUNITY.n_pages == 10_000
        assert DEFAULT_COMMUNITY.n_users == 1_000
        assert DEFAULT_COMMUNITY.n_monitored_users == 100

    def test_paper_default_visit_rates(self):
        assert DEFAULT_COMMUNITY.total_visit_rate == pytest.approx(1000.0)
        assert DEFAULT_COMMUNITY.monitored_visit_rate == pytest.approx(100.0)

    def test_paper_default_lifetime(self):
        assert DEFAULT_COMMUNITY.expected_lifetime_years == pytest.approx(1.5)
        assert DEFAULT_COMMUNITY.death_rate == pytest.approx(1.0 / (1.5 * DAYS_PER_YEAR))


class TestDerivedQuantities:
    def test_monitored_users_rounding(self):
        config = CommunityConfig(n_users=15, monitored_fraction=0.1)
        assert config.n_monitored_users == 2

    def test_monitored_visit_rate_scales_with_m(self):
        config = CommunityConfig(n_users=100, monitored_fraction=0.5,
                                 visits_per_user_per_day=2.0)
        assert config.monitored_visit_rate == pytest.approx(100.0)

    def test_describe_mentions_key_numbers(self):
        text = DEFAULT_COMMUNITY.describe()
        assert "n=10000" in text and "m=100" in text


class TestValidation:
    def test_rejects_zero_pages(self):
        with pytest.raises(ValueError):
            CommunityConfig(n_pages=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            CommunityConfig(monitored_fraction=0.0)

    def test_rejects_negative_lifetime(self):
        with pytest.raises(ValueError):
            CommunityConfig(expected_lifetime_days=-1)

    def test_rejects_fraction_with_no_monitored_users(self):
        with pytest.raises(ValueError):
            CommunityConfig(n_users=1_000, monitored_fraction=1e-9)


class TestTransforms:
    def test_with_pages(self):
        assert DEFAULT_COMMUNITY.with_pages(123).n_pages == 123

    def test_with_users(self):
        assert DEFAULT_COMMUNITY.with_users(77).n_users == 77

    def test_with_lifetime_years(self):
        assert DEFAULT_COMMUNITY.with_lifetime_years(2.0).expected_lifetime_days == pytest.approx(730.0)

    def test_with_total_visit_rate(self):
        config = DEFAULT_COMMUNITY.with_total_visit_rate(5000.0)
        assert config.total_visit_rate == pytest.approx(5000.0)

    def test_with_quality(self):
        config = DEFAULT_COMMUNITY.with_quality(PointMassQualityDistribution(0.2))
        assert config.quality_distribution.max_quality() == pytest.approx(0.2)

    def test_scaled_preserves_user_ratio(self):
        scaled = DEFAULT_COMMUNITY.scaled(50_000)
        assert scaled.n_pages == 50_000
        assert scaled.n_users == 5_000
        assert scaled.monitored_fraction == DEFAULT_COMMUNITY.monitored_fraction

    def test_original_unchanged_by_transforms(self):
        DEFAULT_COMMUNITY.with_pages(5)
        assert DEFAULT_COMMUNITY.n_pages == 10_000

    def test_sample_qualities_size(self):
        config = CommunityConfig(n_pages=50, n_users=10)
        assert config.sample_qualities(rng=0).shape == (50,)
