"""Tests for the steady-state awareness distribution (Theorem 1)."""

import numpy as np
import pytest

from repro.analysis.awareness import (
    awareness_distribution,
    expected_awareness,
    zero_awareness_probability,
)


def constant_visit_rate(value):
    return lambda popularity: np.full_like(np.asarray(popularity, dtype=float), value)


class TestAwarenessDistribution:
    def test_normalized(self):
        distribution = awareness_distribution(0.4, constant_visit_rate(0.1),
                                              death_rate=0.01, m=20)
        assert distribution.sum() == pytest.approx(1.0)
        assert distribution.shape == (21,)

    def test_nonnegative(self):
        distribution = awareness_distribution(0.4, constant_visit_rate(0.5),
                                              death_rate=0.002, m=50)
        assert np.all(distribution >= 0.0)

    def test_high_churn_concentrates_at_zero(self):
        # When pages die much faster than they are visited, almost all pages
        # have zero awareness.
        distribution = awareness_distribution(0.4, constant_visit_rate(0.001),
                                              death_rate=1.0, m=10)
        assert distribution[0] > 0.99

    def test_high_visit_rate_concentrates_at_full(self):
        # When visits vastly outpace retirement, pages spend most of their
        # life fully aware.
        distribution = awareness_distribution(0.4, constant_visit_rate(10.0),
                                              death_rate=0.0001, m=10)
        assert distribution[-1] > 0.9

    def test_closed_form_for_two_levels(self):
        # With m = 1 there are two states; balance gives
        # f(0) = lam / (lam + F(0)) and f(1) = f(0) * F(0) / lam.
        lam, visits = 0.05, 0.2
        distribution = awareness_distribution(0.4, constant_visit_rate(visits),
                                              death_rate=lam, m=1)
        f0 = lam / (lam + visits)
        f1 = f0 * visits / lam
        expected = np.array([f0, f1]) / (f0 + f1)
        assert np.allclose(distribution, expected, rtol=1e-9)

    def test_monotone_in_visit_rate(self):
        low = awareness_distribution(0.4, constant_visit_rate(0.01), 0.01, 20)
        high = awareness_distribution(0.4, constant_visit_rate(0.5), 0.01, 20)
        assert expected_awareness(high) > expected_awareness(low)

    def test_popularity_dependent_visit_rate(self):
        # A visit function increasing in popularity should produce a bimodal
        # distribution: hard to start, fast to finish.
        def visit_rate(popularity):
            return 0.001 + 5.0 * np.asarray(popularity, dtype=float)

        distribution = awareness_distribution(0.4, visit_rate, death_rate=0.005, m=50)
        middle = distribution[10:40].sum()
        ends = distribution[0] + distribution[-5:].sum()
        assert ends > middle

    def test_scalar_fallback_visit_rate(self):
        # Visit functions that only accept scalars are still supported.
        def scalar_only(popularity):
            if isinstance(popularity, np.ndarray):
                raise TypeError("scalars only")
            return 0.1

        distribution = awareness_distribution(0.4, scalar_only, death_rate=0.01, m=5)
        assert distribution.sum() == pytest.approx(1.0)

    def test_invalid_quality_rejected(self):
        with pytest.raises(ValueError):
            awareness_distribution(0.0, constant_visit_rate(0.1), 0.01, 10)

    def test_invalid_death_rate_rejected(self):
        with pytest.raises(ValueError):
            awareness_distribution(0.4, constant_visit_rate(0.1), 0.0, 10)

    def test_no_overflow_for_extreme_ratio(self):
        # F / lambda ratios of ~1e5 across 100 levels overflow naive products.
        distribution = awareness_distribution(1.0, constant_visit_rate(50.0),
                                              death_rate=0.0005, m=100)
        assert np.isfinite(distribution).all()
        assert distribution.sum() == pytest.approx(1.0)


class TestHelpers:
    def test_expected_awareness_bounds(self):
        distribution = np.array([0.5, 0.0, 0.5])
        assert expected_awareness(distribution) == pytest.approx(0.5)

    def test_expected_awareness_rejects_degenerate(self):
        with pytest.raises(ValueError):
            expected_awareness(np.array([1.0]))

    def test_zero_awareness_probability(self):
        assert zero_awareness_probability(np.array([0.25, 0.75])) == pytest.approx(0.25)
