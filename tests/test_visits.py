"""Tests for repro.visits: attention models, allocation, mixed surfing."""

import numpy as np
import pytest

from repro.visits.allocation import VisitAllocator, allocate_visits, expected_visits_by_rank
from repro.visits.attention import (
    CascadeAttention,
    GeometricAttention,
    PowerLawAttention,
    UniformAttention,
)
from repro.visits.surfing import MixedSurfingModel

ALL_MODELS = [PowerLawAttention(), UniformAttention(), GeometricAttention(), CascadeAttention()]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
class TestAttentionContract:
    def test_shares_sum_to_one(self, model):
        assert model.visit_shares(50).sum() == pytest.approx(1.0)

    def test_weights_nonnegative(self, model):
        assert np.all(model.weights(50) >= 0)

    def test_visit_rates_scale(self, model):
        rates = model.visit_rates(20, total_visits=200.0)
        assert rates.sum() == pytest.approx(200.0)

    def test_monotone_nonincreasing(self, model):
        weights = model.weights(30)
        assert np.all(np.diff(weights) <= 1e-12)

    def test_rejects_nonpositive_n(self, model):
        with pytest.raises(ValueError):
            model.weights(0)


class TestPowerLawAttention:
    def test_matches_equation_4(self):
        # F2(rank) = theta * rank^{-3/2} with theta = v / sum(i^{-3/2}).
        n, v = 100, 50.0
        rates = PowerLawAttention().visit_rates(n, v)
        theta = v / sum(i ** -1.5 for i in range(1, n + 1))
        assert rates[0] == pytest.approx(theta)
        assert rates[9] == pytest.approx(theta * 10 ** -1.5)

    def test_rank_one_dominates(self):
        shares = PowerLawAttention().visit_shares(10_000)
        assert shares[0] > 0.35

    def test_custom_exponent(self):
        weights = PowerLawAttention(exponent=2.0).weights(10)
        assert weights[0] / weights[1] == pytest.approx(4.0)


class TestCascadeAttention:
    def test_geometric_decay_in_continue_probability(self):
        weights = CascadeAttention(stop_probability=0.5).weights(4)
        assert np.allclose(weights, [1.0, 0.5, 0.25, 0.125])

    def test_rejects_certain_stop(self):
        with pytest.raises(ValueError):
            CascadeAttention(stop_probability=1.0)


class TestAllocation:
    def test_expected_visits_by_rank_total(self):
        rates = expected_visits_by_rank(30, 90.0)
        assert rates.sum() == pytest.approx(90.0)

    def test_allocate_visits_maps_rank_to_page(self):
        ranking = np.array([2, 0, 1])  # page 2 is rank 1
        by_page = allocate_visits(ranking, 10.0)
        by_rank = expected_visits_by_rank(3, 10.0)
        assert by_page[2] == pytest.approx(by_rank[0])
        assert by_page[1] == pytest.approx(by_rank[2])

    def test_allocator_expected_equals_function(self):
        ranking = np.arange(10)
        allocator = VisitAllocator(total_visits=25.0)
        assert np.allclose(allocator.expected(ranking), allocate_visits(ranking, 25.0))

    def test_allocator_sample_total_and_nonnegative(self):
        ranking = np.arange(50)
        allocator = VisitAllocator(total_visits=200.0)
        sampled = allocator.sample(ranking, rng=0)
        assert sampled.sum() == pytest.approx(200.0)
        assert np.all(sampled >= 0)

    def test_allocator_sample_concentrates_on_top_rank(self):
        ranking = np.arange(100)
        allocator = VisitAllocator(total_visits=10_000.0)
        sampled = allocator.sample(ranking, rng=0)
        assert sampled[0] > sampled[50]

    def test_allocator_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            VisitAllocator(total_visits=0.0)


class TestMixedSurfing:
    def test_pure_search_passthrough(self):
        model = MixedSurfingModel(surfing_fraction=0.0)
        search = np.array([5.0, 3.0, 2.0])
        assert np.allclose(model.combine(search, np.zeros(3), 10.0), search)

    def test_total_visits_preserved(self):
        model = MixedSurfingModel(surfing_fraction=0.4)
        search = np.array([6.0, 3.0, 1.0])
        popularity = np.array([0.5, 0.2, 0.0])
        combined = model.combine(search, popularity, 10.0)
        assert combined.sum() == pytest.approx(10.0)

    def test_pure_surfing_ignores_search(self):
        model = MixedSurfingModel(surfing_fraction=1.0, teleportation=0.0)
        search = np.array([10.0, 0.0])
        popularity = np.array([0.0, 1.0])
        combined = model.combine(search, popularity, 10.0)
        assert combined[1] == pytest.approx(10.0)

    def test_teleportation_spreads_mass(self):
        model = MixedSurfingModel(surfing_fraction=1.0, teleportation=1.0)
        shares = model.surfing_shares(np.array([1.0, 0.0, 0.0, 0.0]))
        assert np.allclose(shares, 0.25)

    def test_zero_popularity_falls_back_to_teleport(self):
        model = MixedSurfingModel(surfing_fraction=1.0, teleportation=0.15)
        shares = model.surfing_shares(np.zeros(5))
        assert np.allclose(shares, 0.2)

    def test_surfing_shares_follow_popularity(self):
        model = MixedSurfingModel(surfing_fraction=1.0, teleportation=0.0)
        shares = model.surfing_shares(np.array([3.0, 1.0]))
        assert shares[0] == pytest.approx(0.75)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            MixedSurfingModel(surfing_fraction=1.5)

    def test_is_pure_search_flag(self):
        assert MixedSurfingModel(0.0).is_pure_search
        assert not MixedSurfingModel(0.2).is_pure_search

    def test_empty_popularity_rejected(self):
        with pytest.raises(ValueError):
            MixedSurfingModel(0.5).surfing_shares(np.array([]))
