"""Tests for repro.community.quality."""

import numpy as np
import pytest

from repro.community.quality import (
    LogNormalQualityDistribution,
    ParetoQualityDistribution,
    PointMassQualityDistribution,
    PowerLawQualityDistribution,
    QualityDistribution,
    UniformQualityDistribution,
    default_web_quality,
)

ALL_DISTRIBUTIONS = [
    PowerLawQualityDistribution(),
    ParetoQualityDistribution(),
    UniformQualityDistribution(),
    LogNormalQualityDistribution(),
    PointMassQualityDistribution(),
]


@pytest.mark.parametrize("distribution", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__)
class TestCommonContract:
    def test_returns_requested_count(self, distribution):
        assert distribution.sample(100, rng=0).shape == (100,)

    def test_values_in_unit_interval(self, distribution):
        values = distribution.sample(500, rng=0)
        assert np.all(values >= 0.0) and np.all(values <= 1.0)

    def test_values_bounded_by_max_quality(self, distribution):
        values = distribution.sample(500, rng=0)
        assert values.max() <= distribution.max_quality() + 1e-12

    def test_deterministic_given_seed(self, distribution):
        assert np.allclose(distribution.sample(50, rng=3), distribution.sample(50, rng=3))

    def test_describe_is_nonempty(self, distribution):
        assert distribution.describe()

    def test_rejects_zero_count(self, distribution):
        with pytest.raises(ValueError):
            distribution.sample(0)


class TestPowerLaw:
    def test_top_value_is_q_max(self):
        values = PowerLawQualityDistribution(shuffle=False).sample(100, rng=0)
        assert values[0] == pytest.approx(0.4)

    def test_unshuffled_is_decreasing(self):
        values = PowerLawQualityDistribution(shuffle=False).sample(100, rng=0)
        assert np.all(np.diff(values) <= 0)

    def test_clipped_at_q_min(self):
        values = PowerLawQualityDistribution(q_min=0.01, shuffle=False).sample(1000, rng=0)
        assert values.min() == pytest.approx(0.01)

    def test_exponent_controls_decay(self):
        steep = PowerLawQualityDistribution(exponent=2.0, shuffle=False).sample(50, rng=0)
        shallow = PowerLawQualityDistribution(exponent=0.5, shuffle=False).sample(50, rng=0)
        assert steep[10] < shallow[10]

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            PowerLawQualityDistribution(q_min=0.5, q_max=0.4)

    def test_shuffle_preserves_multiset(self):
        shuffled = PowerLawQualityDistribution(shuffle=True).sample(64, rng=1)
        ordered = PowerLawQualityDistribution(shuffle=False).sample(64, rng=1)
        assert np.allclose(np.sort(shuffled), np.sort(ordered))


class TestPointMass:
    def test_all_equal(self):
        values = PointMassQualityDistribution(0.3).sample(10, rng=0)
        assert np.allclose(values, 0.3)


class TestUniform:
    def test_bounds_respected(self):
        values = UniformQualityDistribution(low=0.1, high=0.2).sample(1000, rng=0)
        assert values.min() >= 0.1 and values.max() <= 0.2

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            UniformQualityDistribution(low=0.3, high=0.2)


class TestDefaultWebQuality:
    def test_shape_and_head(self):
        values = default_web_quality(200, rng=0)
        assert values.shape == (200,)
        assert values.max() == pytest.approx(0.4)

    def test_is_quality_distribution_instance(self):
        assert isinstance(PowerLawQualityDistribution(), QualityDistribution)
