"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, derive_seed, spawn_rngs


class TestAsRng:
    def test_none_returns_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(7).random(5)
        b = as_rng(7).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(as_rng(1).random(5), as_rng(2).random(5))

    def test_generator_passthrough(self):
        generator = np.random.default_rng(3)
        assert as_rng(generator) is generator

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(11)
        assert isinstance(as_rng(sequence), np.random.Generator)


class TestSpawnRngs:
    def test_count_respected(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(5, 2)
        assert not np.allclose(children[0].random(10), children[1].random(10))

    def test_reproducible_for_same_seed(self):
        first = [g.random(3) for g in spawn_rngs(9, 3)]
        second = [g.random(3) for g in spawn_rngs(9, 3)]
        for a, b in zip(first, second, strict=True):
            assert np.allclose(a, b)

    def test_spawn_from_generator(self):
        generator = np.random.default_rng(1)
        children = spawn_rngs(generator, 2)
        assert len(children) == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(3, "abc") == derive_seed(3, "abc")

    def test_label_changes_seed(self):
        assert derive_seed(3, "abc") != derive_seed(3, "abd")

    def test_base_changes_seed(self):
        assert derive_seed(3, "abc") != derive_seed(4, "abc")

    def test_none_base_supported(self):
        assert isinstance(derive_seed(None, "x"), int)
