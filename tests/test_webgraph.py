"""Tests for the web-graph substrate: PageRank, generators, evolution."""

import numpy as np
import pytest

from repro.community import CommunityConfig
from repro.core.rankers import PopularityRanker
from repro.core.rankers import RandomizedPromotionRanker
from repro.core.promotion import SelectivePromotionRule
from repro.webgraph.evolution import EvolvingWebGraph, GraphCommunitySimulator
from repro.webgraph.generators import (
    copying_model_graph,
    preferential_attachment_graph,
    to_networkx,
)
from repro.webgraph.indegree import indegree_popularity, normalized_indegree
from repro.webgraph.pagerank import pagerank, pagerank_networkx, personalized_pagerank


class TestPageRank:
    def test_scores_sum_to_one(self):
        edges = [(0, 1), (1, 2), (2, 0), (0, 2)]
        scores = pagerank(edges, 3)
        assert scores.sum() == pytest.approx(1.0)

    def test_sink_node_attracts_mass(self):
        # Star graph: everyone links to node 0.
        edges = [(i, 0) for i in range(1, 6)]
        scores = pagerank(edges, 6)
        assert scores[0] == scores.max()

    def test_empty_graph_is_uniform(self):
        scores = pagerank([], 4)
        assert np.allclose(scores, 0.25)

    def test_symmetric_cycle_is_uniform(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        scores = pagerank(edges, 4)
        assert np.allclose(scores, 0.25, atol=1e-6)

    def test_matches_networkx(self):
        import networkx as nx

        rng = np.random.default_rng(0)
        n = 40
        edges = [(int(rng.integers(n)), int(rng.integers(n))) for _ in range(200)]
        # networkx's DiGraph collapses parallel edges, so compare on a
        # deduplicated edge set.
        edges = sorted({(s, t) for s, t in edges if s != t})
        ours = pagerank(edges, n, damping=0.85)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(edges)
        theirs_dict = nx.pagerank(graph, alpha=0.85, tol=1e-12, max_iter=500)
        theirs = np.array([theirs_dict[i] for i in range(n)])
        assert np.allclose(ours, theirs, atol=1e-6)

    def test_personalized_concentrates_on_seeds(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        scores = personalized_pagerank(edges, 4, seeds=[0])
        assert scores[0] == scores.max()

    def test_personalized_requires_seeds(self):
        with pytest.raises(ValueError):
            personalized_pagerank([(0, 1)], 2, seeds=[])

    def test_invalid_edges_rejected(self):
        with pytest.raises(ValueError):
            pagerank([(0, 5)], 3)

    def test_networkx_wrapper(self):
        graph = to_networkx([(0, 1), (1, 0)], 2)
        scores = pagerank_networkx(graph)
        assert np.allclose(scores, 0.5, atol=1e-6)


class TestInDegree:
    def test_counts(self):
        edges = [(0, 1), (2, 1), (1, 0)]
        assert indegree_popularity(edges, 3).tolist() == [1.0, 2.0, 0.0]

    def test_normalized(self):
        edges = [(0, 1), (2, 1), (1, 0)]
        assert normalized_indegree(edges, 3).max() == pytest.approx(1.0)

    def test_empty_graph(self):
        assert normalized_indegree([], 3).sum() == 0.0


class TestGenerators:
    def test_preferential_attachment_basic_shape(self):
        edges = preferential_attachment_graph(200, out_links=3, rng=0)
        indegree = indegree_popularity(edges, 200)
        # Rich-get-richer: the most linked node should far exceed the median.
        assert indegree.max() >= 5 * max(np.median(indegree), 1.0)

    def test_preferential_attachment_edge_bounds(self):
        edges = preferential_attachment_graph(50, out_links=2, rng=0)
        arr = np.asarray(edges)
        assert arr.min() >= 0 and arr.max() < 50

    def test_copying_model_runs(self):
        edges = copying_model_graph(100, out_links=4, copy_probability=0.6, rng=1)
        assert len(edges) > 100
        arr = np.asarray(edges)
        assert arr.min() >= 0 and arr.max() < 100

    def test_copying_model_no_self_loops(self):
        edges = copying_model_graph(80, rng=2)
        assert all(s != t for s, t in edges)

    def test_generators_reproducible(self):
        a = preferential_attachment_graph(60, rng=7)
        b = preferential_attachment_graph(60, rng=7)
        assert a == b

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(3, seed_nodes=5)
        with pytest.raises(ValueError):
            copying_model_graph(3, seed_nodes=5)

    def test_to_networkx_counts(self):
        graph = to_networkx([(0, 1), (1, 2)], 5)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 2


class TestEvolvingWebGraph:
    def test_add_links_updates_indegree(self):
        graph = EvolvingWebGraph(n=10)
        graph.add_links(np.array([3, 3, 5]), rng=0)
        popularity = graph.popularity()
        assert popularity[3] == pytest.approx(1.0)
        assert popularity[5] == pytest.approx(0.5)

    def test_links_follow_visits_and_quality(self):
        graph = EvolvingWebGraph(n=4, links_per_day=200.0)
        visits = np.array([100.0, 100.0, 0.0, 0.0])
        quality = np.array([0.9, 0.01, 0.9, 0.9])
        graph.create_links_from_visits(visits, quality, rng=0)
        popularity = graph.popularity()
        assert popularity[0] == popularity.max()

    def test_no_visits_no_links(self):
        graph = EvolvingWebGraph(n=4)
        created = graph.create_links_from_visits(np.zeros(4), np.full(4, 0.5), rng=0)
        assert created == 0

    def test_retire_pages_drops_links(self):
        graph = EvolvingWebGraph(n=5)
        graph.add_links(np.array([1, 1, 2]), rng=0)
        graph.retire_pages(np.array([1]))
        assert graph.popularity()[1] == 0.0

    def test_pagerank_signal(self):
        graph = EvolvingWebGraph(n=5, popularity_signal="pagerank")
        graph.add_links(np.array([2, 2, 2, 3]), rng=0)
        popularity = graph.popularity()
        assert popularity[2] == popularity.max()

    def test_invalid_signal_rejected(self):
        with pytest.raises(ValueError):
            EvolvingWebGraph(n=5, popularity_signal="clicks")


class TestGraphCommunitySimulator:
    @pytest.fixture
    def graph_community(self):
        return CommunityConfig(
            n_pages=150, n_users=30, monitored_fraction=0.2,
            expected_lifetime_days=60.0,
        )

    def test_run_reports_qpc(self, graph_community):
        simulator = GraphCommunitySimulator(
            graph_community, PopularityRanker(), seed=0,
            graph=EvolvingWebGraph(n=150, links_per_day=30.0),
        )
        outcome = simulator.run(warmup_days=20, measure_days=20)
        assert 0.0 < outcome["qpc_absolute"] <= 0.4
        assert 0.0 < outcome["qpc_normalized"] <= 1.2
        assert outcome["links"] > 0

    def test_promotion_ranker_runs_on_graph(self, graph_community):
        ranker = RandomizedPromotionRanker(SelectivePromotionRule(), k=1, r=0.3)
        simulator = GraphCommunitySimulator(
            graph_community, ranker, seed=1,
            graph=EvolvingWebGraph(n=150, links_per_day=30.0),
        )
        outcome = simulator.run(warmup_days=15, measure_days=15)
        assert outcome["qpc_absolute"] > 0.0
