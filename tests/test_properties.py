"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.awareness import awareness_distribution
from repro.analysis.rank_visit import RankToVisitLaw, selective_rank_shift
from repro.core.merge import merge_positions, randomized_merge
from repro.core.rankers import PopularityRanker, RandomizedPromotionRanker
from repro.core.promotion import SelectivePromotionRule, UniformPromotionRule
from repro.core.rankers_context import RankingContext
from repro.metrics.qpc import ideal_qpc, qpc_from_visits
from repro.metrics.tbp import tbp_from_trajectory
from repro.utils.mathutils import power_law_weights
from repro.visits.attention import PowerLawAttention

# Reasonable caps keep hypothesis runs fast while still exploring the space.
COMMON_SETTINGS = dict(max_examples=50, deadline=None)


class TestMergeProperties:
    @given(
        n_total=st.integers(min_value=1, max_value=300),
        promoted_fraction=st.floats(min_value=0.0, max_value=1.0),
        k=st.integers(min_value=1, max_value=30),
        r=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(**COMMON_SETTINGS)
    def test_merge_positions_invariants(self, n_total, promoted_fraction, k, r, seed):
        n_promoted = int(round(promoted_fraction * n_total))
        slots = merge_positions(n_total, n_promoted, k, r, rng=seed)
        # Exactly the promoted count is marked, never inside the protected prefix.
        assert slots.sum() == n_promoted
        protected = min(k - 1, n_total - n_promoted)
        assert not slots[:protected].any()

    @given(
        n_deterministic=st.integers(min_value=0, max_value=150),
        n_promoted=st.integers(min_value=0, max_value=150),
        k=st.integers(min_value=1, max_value=20),
        r=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(**COMMON_SETTINGS)
    def test_randomized_merge_is_permutation_preserving_det_order(
        self, n_deterministic, n_promoted, k, r, seed
    ):
        deterministic = np.arange(n_deterministic)
        promoted = np.arange(n_deterministic, n_deterministic + n_promoted)
        merged = randomized_merge(deterministic, promoted, k, r, rng=seed)
        assert sorted(merged.tolist()) == list(range(n_deterministic + n_promoted))
        kept = [x for x in merged if x < n_deterministic]
        assert kept == sorted(kept)


class TestRankerProperties:
    @given(
        n=st.integers(min_value=2, max_value=200),
        r=st.floats(min_value=0.0, max_value=1.0),
        k=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(**COMMON_SETTINGS)
    def test_randomized_promotion_always_returns_permutation(self, n, r, k, seed):
        rng = np.random.default_rng(seed)
        awareness = (rng.random(n) > 0.5).astype(float)
        quality = rng.random(n) * 0.4
        context = RankingContext(
            popularity=awareness * quality,
            awareness=awareness,
            quality=quality,
            monitored_population=10,
        )
        ranker = RandomizedPromotionRanker(SelectivePromotionRule(), k=k, r=r)
        ranking = ranker.rank(context, rng=seed)
        assert sorted(ranking.tolist()) == list(range(n))

    @given(
        n=st.integers(min_value=2, max_value=200),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(**COMMON_SETTINGS)
    def test_popularity_ranking_is_sorted(self, n, seed):
        rng = np.random.default_rng(seed)
        popularity = rng.random(n)
        context = RankingContext(popularity=popularity, awareness=popularity)
        ranking = PopularityRanker().rank(context, rng=seed)
        assert np.all(np.diff(popularity[ranking]) <= 1e-12)


class TestAttentionProperties:
    @given(
        n=st.integers(min_value=1, max_value=2000),
        exponent=st.floats(min_value=0.2, max_value=3.0),
    )
    @settings(**COMMON_SETTINGS)
    def test_shares_normalized_and_sorted(self, n, exponent):
        shares = PowerLawAttention(exponent).visit_shares(n)
        assert shares.sum() == pytest.approx(1.0)
        assert np.all(np.diff(shares) <= 1e-15)

    @given(
        n=st.integers(min_value=1, max_value=500),
        exponent=st.floats(min_value=0.2, max_value=3.0),
    )
    @settings(**COMMON_SETTINGS)
    def test_power_law_weights_match_attention(self, n, exponent):
        assert np.allclose(
            power_law_weights(n, exponent), PowerLawAttention(exponent).visit_shares(n)
        )


class TestMetricProperties:
    @given(
        quality=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=100),
        visits=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=100),
    )
    @settings(**COMMON_SETTINGS)
    def test_qpc_bounded_by_quality_range(self, quality, visits):
        size = min(len(quality), len(visits))
        quality_arr = np.asarray(quality[:size])
        visits_arr = np.asarray(visits[:size])
        value = qpc_from_visits(visits_arr, quality_arr)
        assert 0.0 <= value <= quality_arr.max() + 1e-12

    @given(
        quality=st.lists(st.floats(min_value=0.001, max_value=1.0), min_size=1, max_size=60),
    )
    @settings(**COMMON_SETTINGS)
    def test_ideal_qpc_at_least_any_allocation(self, quality):
        quality_arr = np.asarray(quality)
        ideal = ideal_qpc(quality_arr)
        rng = np.random.default_rng(0)
        ranking = rng.permutation(quality_arr.size)
        shares = PowerLawAttention().visit_shares(quality_arr.size)
        visits = np.empty_like(shares)
        visits[ranking] = shares
        assert ideal >= qpc_from_visits(visits, quality_arr) - 1e-9

    @given(
        values=st.lists(st.floats(min_value=0.0, max_value=0.39), min_size=2, max_size=50),
    )
    @settings(**COMMON_SETTINGS)
    def test_tbp_none_when_never_popular(self, values):
        trajectory = np.asarray(values)
        assert tbp_from_trajectory(trajectory, quality=0.4) is None


class TestAnalysisProperties:
    @given(
        quality=st.floats(min_value=0.01, max_value=1.0),
        visit_rate=st.floats(min_value=1e-4, max_value=20.0),
        death_rate=st.floats(min_value=1e-4, max_value=1.0),
        m=st.integers(min_value=1, max_value=60),
    )
    @settings(**COMMON_SETTINGS)
    def test_awareness_distribution_is_distribution(self, quality, visit_rate, death_rate, m):
        distribution = awareness_distribution(
            quality,
            lambda x: np.full_like(np.asarray(x, dtype=float), visit_rate),
            death_rate,
            m,
        )
        assert distribution.shape == (m + 1,)
        assert np.all(distribution >= 0.0)
        assert distribution.sum() == pytest.approx(1.0)

    @given(
        rank=st.floats(min_value=1.0, max_value=10_000.0),
        k=st.integers(min_value=1, max_value=20),
        r=st.floats(min_value=0.0, max_value=0.95),
        pool=st.floats(min_value=0.0, max_value=10_000.0),
    )
    @settings(**COMMON_SETTINGS)
    def test_selective_shift_never_improves_rank(self, rank, k, r, pool):
        base = np.array([rank])
        shifted = selective_rank_shift(base, k, r, pool)
        assert shifted[0] >= rank - 1e-9

    @given(
        n=st.integers(min_value=2, max_value=5_000),
        visits=st.floats(min_value=1.0, max_value=1_000.0),
    )
    @settings(**COMMON_SETTINGS)
    def test_rank_to_visit_law_mass_conserved(self, n, visits):
        law = RankToVisitLaw(n_pages=n, total_visits=visits)
        assert law.visits_by_rank().sum() == pytest.approx(visits)


class TestPromotionRuleProperties:
    @given(
        n=st.integers(min_value=1, max_value=500),
        probability=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(**COMMON_SETTINGS)
    def test_uniform_rule_mask_shape(self, n, probability, seed):
        rng = np.random.default_rng(seed)
        context = RankingContext(popularity=rng.random(n), awareness=rng.random(n))
        mask = UniformPromotionRule(probability).select(context, rng=seed)
        assert mask.shape == (n,)
        assert mask.dtype == bool

    @given(
        n=st.integers(min_value=1, max_value=500),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(**COMMON_SETTINGS)
    def test_selective_rule_matches_zero_awareness_exactly(self, n, seed):
        rng = np.random.default_rng(seed)
        aware_users = rng.integers(0, 5, size=n)
        context = RankingContext(
            popularity=aware_users / 10.0,
            awareness=aware_users / 10.0,
            monitored_population=10,
        )
        mask = SelectivePromotionRule().select(context)
        assert np.array_equal(mask, aware_users == 0)
