"""Tests for the fixed-point solver and the solved analytical model."""

import numpy as np
import pytest

from repro.analysis.solver import SolvedModel, SteadyStateSolver, solve_model
from repro.analysis.spec import RankingSpec
from repro.community import CommunityConfig
from repro.core.policy import RankPromotionPolicy

SMALL_COMMUNITY = CommunityConfig(
    n_pages=800,
    n_users=80,
    monitored_fraction=0.25,
    visits_per_user_per_day=1.0,
    expected_lifetime_days=150.0,
)


@pytest.fixture(scope="module")
def nonrandomized_model():
    return SteadyStateSolver(
        SMALL_COMMUNITY, RankingSpec.nonrandomized(), quality_groups=32, seed=0
    ).solve()


@pytest.fixture(scope="module")
def selective_model():
    return SteadyStateSolver(
        SMALL_COMMUNITY, RankingSpec.selective(r=0.2, k=1), quality_groups=32, seed=0
    ).solve()


class TestRankingSpec:
    def test_from_policy_deterministic(self):
        spec = RankingSpec.from_policy(RankPromotionPolicy("none", 1, 0.0))
        assert spec.kind == "nonrandomized"
        assert not spec.is_randomized

    def test_from_policy_selective(self):
        spec = RankingSpec.from_policy(RankPromotionPolicy("selective", 2, 0.15))
        assert spec.kind == "selective" and spec.k == 2 and spec.r == pytest.approx(0.15)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            RankingSpec(kind="magic")

    def test_r_one_rejected_for_randomized(self):
        with pytest.raises(ValueError):
            RankingSpec(kind="selective", r=1.0)

    def test_describe(self):
        assert "analysis" in RankingSpec.selective(0.1).describe()


class TestSolver:
    def test_model_structure(self, nonrandomized_model):
        assert isinstance(nonrandomized_model, SolvedModel)
        assert nonrandomized_model.iterations >= 1
        assert nonrandomized_model.quality_values.size == nonrandomized_model.quality_counts.size
        assert nonrandomized_model.quality_counts.sum() == pytest.approx(SMALL_COMMUNITY.n_pages)

    def test_visit_rate_positive_and_bounded(self, nonrandomized_model):
        grid = np.linspace(0.0, 0.4, 20)
        visits = np.asarray(nonrandomized_model.expected_visit_rate(grid), dtype=float)
        assert np.all(visits >= 0.0)
        assert np.all(visits <= SMALL_COMMUNITY.monitored_visit_rate + 1e-9)

    def test_visit_rate_increases_with_popularity(self, nonrandomized_model):
        low = float(nonrandomized_model.expected_visit_rate(0.001))
        high = float(nonrandomized_model.expected_visit_rate(0.4))
        assert high > low

    def test_qpc_in_unit_interval(self, nonrandomized_model, selective_model):
        for model in (nonrandomized_model, selective_model):
            assert 0.0 < model.qpc_absolute() <= 0.4
            assert 0.0 < model.qpc_normalized() <= 1.05

    def test_selective_promotion_improves_qpc(self, nonrandomized_model, selective_model):
        assert selective_model.qpc_normalized() > nonrandomized_model.qpc_normalized()

    def test_selective_promotion_reduces_tbp(self, nonrandomized_model, selective_model):
        assert selective_model.tbp(0.4) < nonrandomized_model.tbp(0.4)

    def test_selective_raises_zero_popularity_visit_rate(
        self, nonrandomized_model, selective_model
    ):
        assert float(selective_model.expected_visit_rate(0.0)) > float(
            nonrandomized_model.expected_visit_rate(0.0)
        )

    def test_awareness_distribution_normalized(self, nonrandomized_model):
        distribution = nonrandomized_model.awareness_distribution(0.4)
        assert distribution.sum() == pytest.approx(1.0)
        assert distribution.size == SMALL_COMMUNITY.n_monitored_users + 1

    def test_selective_shifts_awareness_mass_upward(
        self, nonrandomized_model, selective_model
    ):
        m = SMALL_COMMUNITY.n_monitored_users
        levels = np.arange(m + 1) / m
        mean_none = float(np.dot(nonrandomized_model.awareness_distribution(0.4), levels))
        mean_selective = float(np.dot(selective_model.awareness_distribution(0.4), levels))
        assert mean_selective > mean_none

    def test_popularity_trajectory_monotone(self, selective_model):
        trajectory = selective_model.popularity_trajectory(0.4, 200)
        assert trajectory.shape == (200,)
        assert np.all(np.diff(trajectory) >= -1e-12)
        assert trajectory[-1] <= 0.4 + 1e-9

    def test_visit_trajectory_shape(self, selective_model):
        visits = selective_model.visit_trajectory(0.4, 50)
        assert visits.shape == (50,)
        assert np.all(visits >= 0.0)

    def test_tbp_higher_quality_faster(self, selective_model):
        assert selective_model.tbp(0.4) <= selective_model.tbp(0.05)

    def test_tbp_invalid_threshold(self, selective_model):
        with pytest.raises(ValueError):
            selective_model.tbp(0.4, threshold=0.0)

    def test_trajectory_invalid_horizon(self, selective_model):
        with pytest.raises(ValueError):
            selective_model.popularity_trajectory(0.4, 0)

    def test_summary_mentions_qpc(self, selective_model):
        assert "QPC" in selective_model.summary()


class TestSolveModelWrapper:
    def test_accepts_policy(self):
        model = solve_model(SMALL_COMMUNITY, RankPromotionPolicy("selective", 1, 0.1),
                            quality_groups=24, max_iterations=30)
        assert model.spec.kind == "selective"

    def test_accepts_spec(self):
        model = solve_model(SMALL_COMMUNITY, RankingSpec.uniform(r=0.1),
                            quality_groups=24, max_iterations=30)
        assert model.spec.kind == "uniform"

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            solve_model(SMALL_COMMUNITY, "selective")

    def test_uniform_promotion_also_improves_qpc(self):
        none = solve_model(SMALL_COMMUNITY, RankingSpec.nonrandomized(),
                           quality_groups=24, max_iterations=40, seed=0)
        uniform = solve_model(SMALL_COMMUNITY, RankingSpec.uniform(r=0.2),
                              quality_groups=24, max_iterations=40, seed=0)
        assert uniform.qpc_normalized() >= none.qpc_normalized()
