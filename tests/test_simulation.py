"""Tests for the simulation engine, configuration and runner helpers."""

import numpy as np
import pytest

from repro.community import CommunityConfig, PointMassQualityDistribution
from repro.core.policy import RankPromotionPolicy
from repro.core.rankers import PopularityRanker, QualityOracleRanker
from repro.simulation import (
    SimulationConfig,
    Simulator,
    compare_policies,
    measure_qpc,
    measure_tbp,
    popularity_trajectory,
)
from repro.simulation.observers import AwarenessSnapshotObserver, QPCObserver
from repro.visits.surfing import MixedSurfingModel


class TestSimulationConfig:
    def test_defaults_valid(self):
        config = SimulationConfig()
        assert config.warmup_days > 0 and config.measure_days > 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(mode="warp")

    def test_invalid_probe_quality_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(probe_quality=1.5)

    def test_total_days_includes_probe_horizon(self):
        config = SimulationConfig(warmup_days=10, measure_days=5,
                                  probe_quality=0.4, probe_horizon_days=50)
        assert config.total_days == 60

    def test_fast_scales_down(self):
        config = SimulationConfig(warmup_days=100, measure_days=100).fast(4)
        assert config.warmup_days == 25 and config.measure_days == 25

    def test_for_community_scales_with_lifetime(self, tiny_community):
        config = SimulationConfig.for_community(tiny_community, warmup_lifetimes=2,
                                                measure_lifetimes=1)
        assert config.warmup_days == pytest.approx(100, abs=1)
        assert config.measure_days == pytest.approx(50, abs=1)

    def test_with_seed(self):
        assert SimulationConfig().with_seed(5).seed == 5


class TestSimulatorBasics:
    def test_step_returns_visit_allocation(self, tiny_community, fast_sim_config):
        simulator = Simulator(tiny_community, PopularityRanker(), fast_sim_config)
        visits = simulator.step()
        assert visits.shape == (tiny_community.n_pages,)
        assert visits.sum() == pytest.approx(tiny_community.total_visit_rate)

    def test_awareness_monotone_between_deaths(self, tiny_community):
        config = SimulationConfig(warmup_days=1, measure_days=1, mode="fluid", seed=0)
        community = CommunityConfig(
            n_pages=100, n_users=20, monitored_fraction=0.5,
            expected_lifetime_days=10_000.0,
        )
        simulator = Simulator(community, PopularityRanker(), config)
        before = simulator.pool.awareness.copy()
        simulator.step()
        after = simulator.pool.awareness
        assert np.all(after >= before - 1e-12)

    def test_run_returns_result(self, tiny_community, fast_sim_config):
        result = Simulator(tiny_community, PopularityRanker(),
                           fast_sim_config.with_seed(1)).run()
        assert 0.0 <= result.qpc_absolute <= 1.0
        assert 0.0 <= result.qpc_normalized <= 1.5
        assert result.days_simulated == fast_sim_config.warmup_days + fast_sim_config.measure_days
        assert result.final_awareness is not None

    def test_reproducible_with_seed(self, tiny_community, fast_sim_config):
        a = Simulator(tiny_community, PopularityRanker(), fast_sim_config.with_seed(3)).run()
        b = Simulator(tiny_community, PopularityRanker(), fast_sim_config.with_seed(3)).run()
        assert a.qpc_absolute == pytest.approx(b.qpc_absolute)

    def test_different_seeds_differ(self, tiny_community, fast_sim_config):
        a = Simulator(tiny_community, PopularityRanker(), fast_sim_config.with_seed(3)).run()
        b = Simulator(tiny_community, PopularityRanker(), fast_sim_config.with_seed(4)).run()
        assert a.qpc_absolute != pytest.approx(b.qpc_absolute)

    def test_fluid_mode_runs(self, tiny_community):
        config = SimulationConfig(warmup_days=30, measure_days=30, mode="fluid", seed=0)
        result = Simulator(tiny_community, PopularityRanker(), config).run()
        assert result.qpc_absolute > 0

    def test_oracle_ranker_approaches_ideal(self, tiny_community):
        config = SimulationConfig(warmup_days=150, measure_days=100, seed=0)
        result = Simulator(tiny_community, QualityOracleRanker(), config).run()
        assert result.qpc_normalized > 0.9

    def test_probe_injection_tracks_trajectory(self, tiny_community):
        config = SimulationConfig(warmup_days=30, measure_days=30, seed=0,
                                  probe_quality=0.4, probe_horizon_days=50)
        result = Simulator(tiny_community, QualityOracleRanker(), config).run()
        assert result.probe_trajectory is not None
        assert result.probe_trajectory.size > 0
        assert result.probe_quality == pytest.approx(0.4)

    def test_surfing_model_changes_outcome(self, tiny_community, fast_sim_config):
        plain = Simulator(tiny_community, PopularityRanker(),
                          fast_sim_config.with_seed(5)).run()
        surf = Simulator(tiny_community, PopularityRanker(), fast_sim_config.with_seed(5),
                         surfing=MixedSurfingModel(surfing_fraction=0.8)).run()
        assert plain.qpc_absolute != pytest.approx(surf.qpc_absolute)

    def test_point_mass_quality_gives_quality_qpc(self):
        community = CommunityConfig(
            n_pages=100, n_users=20, monitored_fraction=0.5,
            quality_distribution=PointMassQualityDistribution(0.3),
            expected_lifetime_days=50.0,
        )
        config = SimulationConfig(warmup_days=20, measure_days=20, seed=0)
        result = Simulator(community, PopularityRanker(), config).run()
        assert result.qpc_absolute == pytest.approx(0.3)
        assert result.qpc_normalized == pytest.approx(1.0)

    def test_history_length_enables_history(self, tiny_community):
        simulator = Simulator(tiny_community, PopularityRanker(),
                              SimulationConfig(warmup_days=1, measure_days=1, seed=0),
                              history_length=3)
        for _ in range(5):
            simulator.step()
        assert simulator._history_array().shape[0] == 3

    def test_negative_history_rejected(self, tiny_community):
        with pytest.raises(ValueError):
            Simulator(tiny_community, PopularityRanker(), history_length=-1)


class TestObservers:
    def test_qpc_observer(self, tiny_pool):
        observer = QPCObserver()
        observer.record(0, tiny_pool, np.ones(tiny_pool.n))
        assert observer.qpc == pytest.approx(tiny_pool.quality.mean())

    def test_awareness_snapshot_observer(self, tiny_pool):
        observer = AwarenessSnapshotObserver(every=2)
        observer.record(2, tiny_pool, np.ones(tiny_pool.n))
        observer.record(3, tiny_pool, np.ones(tiny_pool.n))
        assert observer.latest is not None
        assert len(observer.snapshots) == 1


class TestRunnerHelpers:
    def test_measure_qpc_keys(self, tiny_community, fast_sim_config):
        result = measure_qpc(tiny_community, RankPromotionPolicy("none", 1, 0.0),
                             fast_sim_config, repetitions=2, seed=0)
        assert set(result) >= {"qpc_absolute", "qpc_normalized", "repetitions"}
        assert result["repetitions"] == 2

    def test_measure_qpc_reproducible(self, tiny_community, fast_sim_config):
        a = measure_qpc(tiny_community, RankPromotionPolicy("selective", 1, 0.2),
                        fast_sim_config, repetitions=2, seed=9)
        b = measure_qpc(tiny_community, RankPromotionPolicy("selective", 1, 0.2),
                        fast_sim_config, repetitions=2, seed=9)
        assert a["qpc_normalized"] == pytest.approx(b["qpc_normalized"])

    def test_measure_tbp_reports_censoring(self, tiny_community):
        config = SimulationConfig(warmup_days=30, measure_days=30,
                                  probe_horizon_days=40)
        result = measure_tbp(tiny_community, RankPromotionPolicy("none", 1, 0.0),
                             probe_quality=0.4, config=config, repetitions=2, seed=0)
        assert 0.0 <= result["censored_fraction"] <= 1.0
        assert result["tbp_days"] <= 40.0

    def test_popularity_trajectory_shape(self, tiny_community):
        config = SimulationConfig(warmup_days=20, measure_days=20)
        trajectory = popularity_trajectory(
            tiny_community, RankPromotionPolicy("selective", 1, 0.5),
            probe_quality=0.4, horizon_days=60, config=config, repetitions=2, seed=0,
        )
        assert trajectory.shape == (60,)
        assert np.all(trajectory >= 0.0)

    def test_compare_policies(self, tiny_community, fast_sim_config):
        policies = {
            "none": RankPromotionPolicy("none", 1, 0.0),
            "selective": RankPromotionPolicy("selective", 1, 0.2),
        }
        results = compare_policies(tiny_community, policies, fast_sim_config, seed=1)
        assert set(results) == {"none", "selective"}
