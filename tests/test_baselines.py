"""Tests for the related-work baseline rankers."""

import numpy as np
import pytest

from repro.baselines import AgeWeightedRanker, DerivativeForecastRanker
from repro.core.rankers_context import RankingContext


def make_context(popularity, ages=None, history=None):
    popularity = np.asarray(popularity, dtype=float)
    return RankingContext(
        popularity=popularity,
        awareness=popularity.copy(),
        ages=None if ages is None else np.asarray(ages, dtype=float),
        popularity_history=history,
    )


class TestAgeWeightedRanker:
    def test_young_page_boosted_over_slightly_more_popular_old_page(self):
        context = make_context([0.30, 0.25], ages=[1000.0, 5.0])
        ranking = AgeWeightedRanker(tau_days=90.0).rank(context, rng=0)
        assert ranking[0] == 1

    def test_large_popularity_gap_not_overturned(self):
        context = make_context([0.9, 0.001], ages=[1000.0, 5.0])
        ranking = AgeWeightedRanker(tau_days=90.0).rank(context, rng=0)
        assert ranking[0] == 0

    def test_old_pages_rank_as_plain_popularity(self):
        popularity = np.array([0.2, 0.8, 0.5])
        context = make_context(popularity, ages=[5000.0, 5000.0, 5000.0])
        ranking = AgeWeightedRanker().rank(context, rng=0)
        assert ranking.tolist() == [1, 2, 0]

    def test_requires_ages(self):
        with pytest.raises(ValueError):
            AgeWeightedRanker().rank(make_context([0.1, 0.2]))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AgeWeightedRanker(tau_days=0.0)

    def test_describe(self):
        assert "Age-weighted" in AgeWeightedRanker().describe()


class TestDerivativeForecastRanker:
    def test_rising_page_outranks_static_page(self):
        history = np.array([
            [0.30, 0.05],
            [0.30, 0.15],
            [0.30, 0.25],
        ])
        context = make_context([0.30, 0.25], history=history)
        ranking = DerivativeForecastRanker(horizon_days=10.0).rank(context, rng=0)
        assert ranking[0] == 1

    def test_without_history_falls_back_to_popularity(self):
        context = make_context([0.1, 0.9, 0.5])
        ranking = DerivativeForecastRanker().rank(context, rng=0)
        assert ranking[0] == 1

    def test_single_snapshot_falls_back(self):
        context = make_context([0.2, 0.4], history=np.array([[0.2, 0.4]]))
        ranking = DerivativeForecastRanker().rank(context, rng=0)
        assert ranking[0] == 1

    def test_forecast_never_negative(self):
        history = np.array([
            [0.5, 0.2],
            [0.3, 0.2],
            [0.1, 0.2],
        ])
        context = make_context([0.1, 0.2], history=history)
        ranking = DerivativeForecastRanker(horizon_days=1000.0).rank(context, rng=0)
        # Falling page is clipped at zero, static page wins.
        assert ranking[0] == 1

    def test_is_permutation(self):
        rng = np.random.default_rng(0)
        history = rng.random((4, 50))
        context = make_context(rng.random(50), history=history)
        ranking = DerivativeForecastRanker().rank(context, rng=0)
        assert sorted(ranking.tolist()) == list(range(50))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DerivativeForecastRanker(horizon_days=0.0)
