"""Tests for the experiment drivers, registry, defaults and CLI."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import figure1, figure2, figure3
from repro.experiments.defaults import (
    ExperimentScale,
    default_community,
    fast_community,
    scaled_settings,
    smoke_community,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.results import ExperimentResult, SeriesResult


class TestDefaults:
    def test_default_community_is_paper_default(self):
        community = default_community()
        assert community.n_pages == 10_000 and community.n_users == 1_000

    def test_fast_community_preserves_ratios(self):
        community = fast_community()
        assert community.n_users / community.n_pages == pytest.approx(0.1)
        assert community.monitored_fraction == pytest.approx(0.1)

    def test_scaled_settings_names(self):
        for scale in ("paper", "fast", "smoke"):
            settings = scaled_settings(scale)
            assert isinstance(settings, ExperimentScale)
            assert settings.name == scale

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            scaled_settings("huge")

    def test_simulation_config_scaled_to_lifetime(self):
        settings = scaled_settings("smoke")
        config = settings.simulation_config()
        lifetime = smoke_community().expected_lifetime_days
        assert config.warmup_days == pytest.approx(settings.warmup_lifetimes * lifetime, abs=1)


class TestResultContainers:
    def test_series_add_and_rows(self):
        series = SeriesResult("demo")
        series.add(1, 2)
        series.add(3, 4)
        assert series.as_rows() == [("demo", 1.0, 2.0), ("demo", 3.0, 4.0)]

    def test_experiment_result_table_render(self):
        result = ExperimentResult("figX", "title", "x", "y")
        series = result.add_series("a")
        series.add(0.0, 1.0)
        series.add(1.0, 2.0)
        text = result.render()
        assert "figX" in text and "a" in text

    def test_get_series(self):
        result = ExperimentResult("figX", "title", "x", "y")
        result.add_series("a")
        assert result.get_series("a").name == "a"
        with pytest.raises(KeyError):
            result.get_series("missing")

    def test_table_handles_missing_points(self):
        result = ExperimentResult("figX", "t", "x", "y")
        a = result.add_series("a")
        b = result.add_series("b")
        a.add(0.0, 1.0)
        b.add(1.0, 2.0)
        text = result.to_table().render()
        assert "-" in text


class TestRegistry:
    def test_all_figures_registered(self):
        names = list_experiments()
        for expected in ("figure1", "figure2", "figure3", "figure4a", "figure4b",
                         "figure5", "figure6", "figure7a", "figure7b", "figure7c",
                         "figure7d", "figure8"):
            assert expected in names

    def test_get_experiment_returns_callable(self):
        assert callable(get_experiment("figure5"))

    def test_unknown_experiment_raises_with_guidance(self):
        with pytest.raises(KeyError, match="available"):
            get_experiment("figure99")

    def test_every_driver_accepts_scale_and_seed(self):
        for name, driver in EXPERIMENTS.items():
            code = driver.__code__
            assert "scale" in code.co_varnames[:code.co_argcount], name
            assert "seed" in code.co_varnames[:code.co_argcount], name


class TestDriversSmokeScale:
    def test_figure1_driver(self):
        result = figure1.run(scale="smoke", seed=0)
        assert result.experiment == "figure1"
        series = result.get_series("funny-vote ratio")
        assert len(series.y) == 2
        assert all(0.0 <= value <= 1.0 for value in series.y)

    def test_figure2_driver(self):
        result = figure2.run(scale="smoke", seed=0, horizon_days=60)
        without = result.get_series("without rank promotion")
        with_promo = result.get_series("with rank promotion")
        assert len(without.y) == len(with_promo.y) > 0
        assert all(value >= 0.0 for value in without.y + with_promo.y)
        # Early in the page's life, promotion should give at least as many visits.
        assert with_promo.y[0] >= without.y[0]

    def test_figure3_driver(self):
        result = figure3.run(scale="smoke", seed=0)
        for series in result.series:
            assert sum(series.y) == pytest.approx(1.0, abs=1e-6)

    def test_figure3_selective_shifts_mass_upward(self):
        result = figure3.run(scale="smoke", seed=0)
        baseline = result.series[0]
        promoted = result.series[1]
        # Mass at the top awareness bin should grow under selective promotion.
        assert promoted.y[-1] >= baseline.y[-1]


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["figure3"])
        assert args.scale == "fast" and args.seed == 0

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure5" in out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["figure99"]) == 2

    def test_run_figure3_smoke(self, capsys):
        assert main(["figure3", "--scale", "smoke", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "figure3" in out and "completed" in out
