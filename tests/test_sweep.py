"""Tests for the batched serving-replay sweep engine.

The load-bearing property is **row parity**: every variant replayed by the
lockstep :class:`ServingSweep` must produce a bit-identical
:class:`TraceReplayResult` to replaying that variant alone through the
per-query ground-truth loop (:func:`repro.simulation.replay.replay_trace`)
at equal seeds — served pages, clicked pages, cache counters, routing
counters, final awareness state and version stamps.  The rest covers the
trace recording, the grid helpers, the prefix slot algebra reused from
``repro.core.batch_rank``, and the multi-process variant sharding.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.community import CommunityConfig
from repro.core.batch_rank import batched_prefix_promotion_slots
from repro.serving.sweep import (
    ServingSweep,
    SweepVariant,
    build_variant_router,
    parse_grid_values,
    run_sweep,
    run_sweep_benchmark,
    variant_grid,
    variant_seed,
)
from repro.serving.workload import (
    RecordedTrace,
    StreamingWorkload,
    WorkloadConfig,
    record_trace,
)
from repro.simulation.replay import replay_trace


@pytest.fixture
def sweep_community():
    return CommunityConfig(
        n_pages=240,
        n_users=60,
        monitored_fraction=0.3,
        visits_per_user_per_day=1.0,
        expected_lifetime_days=40.0,
    )


def make_trace(n_queries=160, flush_every=16, feedback_rate=0.4,
               day_every=None, seed=7):
    workload = StreamingWorkload(
        WorkloadConfig(
            n_distinct_queries=40,
            zipf_exponent=1.1,
            k=10,
            feedback_rate=feedback_rate,
            flush_every=flush_every,
        ),
        seed=seed,
    )
    return record_trace(workload, n_queries, day_every=day_every)


def assert_row_parity(community, variants, trace, seed=3):
    """Every sweep row must equal its standalone replay, bit for bit."""
    results = ServingSweep(community, variants, seed=seed).run(trace)
    for index, variant in enumerate(variants):
        router = build_variant_router(
            community, variant, variant_seed(seed, index)
        )
        reference = replay_trace(router, trace, variant.k)
        assert results[index].matches(reference), (
            "sweep row %d (%s) diverged from its standalone replay"
            % (index, variant.label())
        )
    return results


# ------------------------------------------------------------------ parity


@pytest.mark.parametrize("mode", ["fluid", "stochastic"])
def test_row_parity_across_variant_shapes(sweep_community, mode):
    """Cache budgets, shard counts, rules and the per-query fallback."""
    variants = [
        SweepVariant(k=10, r=0.1, rule="selective", cache_capacity=16,
                     staleness_budget=0, n_shards=1, mode=mode),
        SweepVariant(k=5, r=0.2, rule="uniform", cache_capacity=8,
                     staleness_budget=2, n_shards=3, mode=mode),
        SweepVariant(k=10, r=0.0, rule="none", cache_capacity=None,
                     n_shards=2, mode=mode),
        SweepVariant(k=7, r=0.3, rule="selective", cache_capacity=None,
                     n_shards=1, mode=mode),  # uncached randomized: per-query
        SweepVariant(k=12, r=0.05, rule="selective", promote_k=3,
                     cache_capacity=4, staleness_budget=1, n_shards=2,
                     mode=mode),
    ]
    assert_row_parity(sweep_community, variants, make_trace())


def test_cache_invalidation_mid_replay(sweep_community):
    """Version-stamped entries go stale as feedback flushes land.

    With budget 0 every flushed window invalidates the cached page
    (validate-on-read eviction); with a budget of 3 most flushes are
    absorbed.  Both must stay bit-identical to the standalone replay, and
    the strict variant must observe strictly more stale evictions.
    """
    variants = [
        SweepVariant(k=8, r=0.1, cache_capacity=16, staleness_budget=0),
        SweepVariant(k=8, r=0.1, cache_capacity=16, staleness_budget=3),
    ]
    results = assert_row_parity(
        sweep_community, variants, make_trace(n_queries=240)
    )
    strict, lenient = results
    assert strict.stats["cache_stale_evictions"] > 0
    assert (
        strict.stats["cache_stale_evictions"]
        > lenient.stats["cache_stale_evictions"]
    )
    assert lenient.stats["cache_hit_rate"] > strict.stats["cache_hit_rate"]


def test_lifecycle_days_invalidate_mid_replay(sweep_community):
    """Lifecycle days replace pages mid-replay; parity must survive them."""
    variants = [
        SweepVariant(k=8, r=0.1, cache_capacity=16, staleness_budget=0),
        SweepVariant(k=8, r=0.1, cache_capacity=16, staleness_budget=4,
                     n_shards=2),
    ]
    trace = make_trace(n_queries=200, day_every=48)
    results = assert_row_parity(sweep_community, variants, trace)
    assert all(
        version > 0 for result in results for version in result.final_versions
    )


def test_shard_boundary_feedback_batching(sweep_community):
    """Feedback crossing shard boundaries lands on the right lane.

    With three shards the recorded clicks scatter across lanes; the sweep
    buffers them per lane without rehashing.  Beyond bit-parity with the
    standalone router (which *does* rehash per event), the shards that
    received feedback must be exactly the shards whose popularity state
    advanced.
    """
    variant = SweepVariant(k=6, r=0.1, cache_capacity=8,
                           staleness_budget=0, n_shards=3)
    trace = make_trace(n_queries=200, flush_every=10)
    sweep = ServingSweep(sweep_community, [variant], seed=5)
    result = sweep.run(trace)[0]

    router = build_variant_router(
        sweep_community, variant, variant_seed(5, 0)
    )
    reference = replay_trace(router, trace, variant.k)
    assert result.matches(reference)
    assert result.feedback_events > 0
    assert result.stats["feedback_buffered"] == result.feedback_events
    # Every shard that saw a version bump matches the standalone replay's
    # notion of which shards received feedback batches.
    assert result.final_versions == reference.final_versions
    assert sum(result.final_versions) > 0


def test_sweep_handles_query_free_and_empty_windows(sweep_community):
    """Flush boundaries beyond the stream end and tiny traces are safe."""
    variants = [SweepVariant(k=5, cache_capacity=8)]
    # Fewer queries than one flush window.
    assert_row_parity(sweep_community, variants, make_trace(n_queries=9))
    # Zero-query trace: nothing served, nothing flushed.
    empty = make_trace(n_queries=0)
    results = ServingSweep(sweep_community, variants, seed=3).run(empty)
    assert results[0].queries == 0
    assert results[0].feedback_events == 0


# -------------------------------------------------------------- hypothesis


@settings(max_examples=20, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=30),
    r=st.sampled_from([0.0, 0.05, 0.1, 0.3]),
    rule=st.sampled_from(["none", "uniform", "selective"]),
    promote_k=st.integers(min_value=1, max_value=4),
    cache=st.sampled_from([None, 1, 8]),
    budget=st.integers(min_value=0, max_value=3),
    shards=st.integers(min_value=1, max_value=3),
    mode=st.sampled_from(["fluid", "stochastic"]),
    flush_every=st.integers(min_value=3, max_value=40),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_any_single_sweep_row_equals_standalone_replay(
    k, r, rule, promote_k, cache, budget, shards, mode, flush_every, seed
):
    """Property: an arbitrary variant's sweep row is its standalone replay."""
    community = CommunityConfig(
        n_pages=90,
        n_users=30,
        monitored_fraction=0.4,
        visits_per_user_per_day=1.0,
        expected_lifetime_days=30.0,
    )
    variant = SweepVariant(
        k=k, r=r, rule=rule, promote_k=promote_k, cache_capacity=cache,
        staleness_budget=budget, n_shards=shards, mode=mode,
    )
    trace = make_trace(
        n_queries=60, flush_every=flush_every, feedback_rate=0.5, seed=seed
    )
    result = ServingSweep(community, [variant], seed=seed).run(trace)[0]
    router = build_variant_router(community, variant, variant_seed(seed, 0))
    reference = replay_trace(router, trace, variant.k)
    assert result.matches(reference)


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_prefix_slots_match_sequential_merge_prefix(data):
    """The clipped-cumsum slot algebra equals the serving engine's
    ``_merge_prefix`` slot construction for every drain case with k <= n."""
    n = data.draw(st.integers(min_value=1, max_value=40), label="n")
    k = data.draw(st.integers(min_value=1, max_value=n), label="k")
    pool = data.draw(st.integers(min_value=0, max_value=n), label="pool")
    protected = data.draw(st.integers(min_value=0, max_value=k), label="protected")
    flip_bits = data.draw(
        st.lists(st.booleans(), min_size=k - protected, max_size=k - protected),
        label="flips",
    )
    flips_open = np.asarray(flip_bits, dtype=bool)

    # Reference: the slot construction of ServingEngine._merge_prefix.
    n_unpromoted = n - pool
    s = min(int(flips_open.sum()), pool)
    if k - s > n_unpromoted:
        s = min(k - n_unpromoted, pool)
    slots_reference = np.zeros(k, dtype=bool)
    flip_true = np.flatnonzero(flips_open) + protected
    if s < flip_true.size:
        flip_true = flip_true[:s]
    slots_reference[flip_true] = True
    short = s - flip_true.size
    if short > 0:
        tail_false = np.flatnonzero(~slots_reference)[-short:]
        slots_reference[tail_false] = True

    flips_full = np.zeros((1, k), dtype=bool)
    flips_full[0, protected:] = flips_open
    slots_batched = batched_prefix_promotion_slots(
        flips_full,
        np.asarray([n_unpromoted]),
        np.asarray([pool]),
    )[0]
    np.testing.assert_array_equal(slots_batched, slots_reference)
    assert int(slots_batched.sum()) == s


# ------------------------------------------------------- grids and plumbing


def test_variant_grid_shape_and_determinism():
    grid = variant_grid()
    assert len(grid) == 32
    assert grid == variant_grid()  # deterministic order, same configs
    assert len({variant.label() for variant in grid}) == 32
    small = variant_grid(ks=(5,), rs=(0.0,), staleness_budgets=(0,),
                         shard_counts=(1, 2), cache_capacity=None)
    assert [variant.n_shards for variant in small] == [1, 2]
    assert all(variant.effective_cache_capacity is None for variant in small)
    with pytest.raises(ValueError):
        variant_grid(rule="bogus")


def test_parse_grid_values():
    assert parse_grid_values("10,20") == [10, 20]
    assert parse_grid_values(" 0.0, 0.1 ", float) == [0.0, 0.1]
    with pytest.raises(ValueError):
        parse_grid_values(" , ")


def test_variant_validation():
    with pytest.raises(ValueError):
        SweepVariant(k=0)
    with pytest.raises(ValueError):
        SweepVariant(rule="bogus")
    assert SweepVariant(cache_capacity=0).effective_cache_capacity is None


def test_variant_seed_stable_per_index():
    a = variant_seed(3, 1)
    b = variant_seed(3, 1)
    assert np.random.default_rng(a).random() == np.random.default_rng(b).random()
    assert (
        np.random.default_rng(variant_seed(3, 1)).random()
        != np.random.default_rng(variant_seed(3, 2)).random()
    )
    # The warm-awareness stream (entropy + (1,)) is independent of the
    # construction stream.
    warm = np.random.SeedSequence(entropy=(3, 1, 1))
    assert (
        np.random.default_rng(warm).random()
        != np.random.default_rng(variant_seed(3, 1)).random()
    )


def test_record_trace_reproducible_and_validated():
    trace_a = make_trace(seed=9)
    trace_b = make_trace(seed=9)
    np.testing.assert_array_equal(trace_a.query_ids, trace_b.query_ids)
    np.testing.assert_array_equal(trace_a.coin_u, trace_b.coin_u)
    np.testing.assert_array_equal(trace_a.position_u, trace_b.position_u)
    assert trace_a.n_queries == 160
    with pytest.raises(ValueError):
        record_trace(StreamingWorkload(seed=1), 10, seed=2)
    with pytest.raises(ValueError):
        record_trace(n_queries=-1)
    with pytest.raises(ValueError):
        RecordedTrace(
            query_ids=np.arange(4), coin_u=np.zeros(3), position_u=np.zeros(4)
        )


def test_trace_boundaries():
    trace = RecordedTrace(
        query_ids=np.arange(10), coin_u=np.zeros(10), position_u=np.zeros(10),
        flush_every=4, day_every=6,
    )
    assert list(trace.boundaries()) == [4, 6, 8, 10]
    empty = RecordedTrace(
        query_ids=np.zeros(0, dtype=int), coin_u=np.zeros(0),
        position_u=np.zeros(0), flush_every=4,
    )
    assert list(empty.boundaries()) == []


def test_run_sweep_worker_sharding_identical(sweep_community):
    """Process-sharded sweeps return the same per-variant results."""
    variants = variant_grid(ks=(5,), rs=(0.0, 0.1), staleness_budgets=(0,),
                            shard_counts=(1, 2), cache_capacity=8)
    trace = make_trace(n_queries=80)
    single = run_sweep(sweep_community, variants, trace, seed=2, n_workers=1)
    sharded = run_sweep(sweep_community, variants, trace, seed=2, n_workers=2)
    assert len(single.results) == len(sharded.results) == len(variants)
    for ours, theirs in zip(single.results, sharded.results, strict=True):
        assert ours.matches(theirs)
    assert single.queries == trace.n_queries
    assert single.total_queries == trace.n_queries * len(variants)
    assert single.queries_per_second > 0
    rows = single.rows()
    assert len(rows) == len(variants)
    assert {"k", "r", "n_shards", "pages_crc"} <= set(rows[0])
    assert "sweep over" in single.render()


def test_run_sweep_rejects_empty_variants(sweep_community):
    with pytest.raises(ValueError):
        run_sweep(sweep_community, [], make_trace(n_queries=10))
    with pytest.raises(ValueError):
        ServingSweep(sweep_community, [])


def test_sweep_benchmark_smoke():
    """The benchmark driver reports parity and sane metrics at tiny scale."""
    report = run_sweep_benchmark(
        n_pages=300,
        n_queries=120,
        variants=variant_grid(ks=(5,), rs=(0.0, 0.1), staleness_budgets=(0,),
                              shard_counts=(1,), cache_capacity=8),
        seed=1,
        sweep_repetitions=1,
    )
    assert report["parity_bit_identical"] == 1.0
    assert report["replicates"] == 2.0
    assert report["queries_per_second_sweep"] > 0
    assert report["feedback_events_total"] > 0
