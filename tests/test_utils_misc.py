"""Tests for repro.utils.tables and repro.utils.validation."""

import pytest

from repro.utils.tables import Table, format_series
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestTable:
    def test_render_contains_columns_and_rows(self):
        table = Table(["x", "y"], title="demo")
        table.add_row(1, 2.5)
        text = table.render()
        assert "demo" in text
        assert "x" in text and "y" in text
        assert "2.5000" in text

    def test_row_length_mismatch_rejected(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_needs_at_least_one_column(self):
        with pytest.raises(ValueError):
            Table([])

    def test_large_and_small_floats_use_scientific(self):
        table = Table(["v"])
        table.add_row(1e-7)
        table.add_row(1e7)
        text = table.render()
        assert "e-07" in text
        assert "e+07" in text

    def test_str_matches_render(self):
        table = Table(["v"])
        table.add_row(1)
        assert str(table) == table.render()


class TestFormatSeries:
    def test_contains_name_and_points(self):
        text = format_series("curve", [1, 2], [3.0, 4.0])
        assert "curve" in text
        assert "->" in text
        assert text.count("->") == 2


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 2.5) == 2.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_positive_int_accepts(self):
        assert check_positive_int("n", 3) == 3

    def test_check_positive_int_rejects_float(self):
        with pytest.raises(ValueError):
            check_positive_int("n", 2.5)

    def test_check_positive_int_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int("n", -1)

    def test_check_probability_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_fraction_rejects_zero(self):
        with pytest.raises(ValueError):
            check_fraction("f", 0.0)

    def test_check_fraction_accepts_one(self):
        assert check_fraction("f", 1.0) == 1.0
