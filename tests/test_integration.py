"""Integration tests spanning multiple subsystems.

These exercise the headline claims of the paper end to end on scaled-down
communities: randomized rank promotion discovers new high-quality pages
faster (TBP) and does not hurt — typically helps — amortized result quality
(QPC), and the analytical model agrees with the simulator about the
direction of every effect.
"""

import numpy as np
import pytest

from repro.analysis import RankingSpec, solve_model
from repro.community import CommunityConfig
from repro.core.policy import RankPromotionPolicy
from repro.simulation import SimulationConfig, measure_qpc, measure_tbp, popularity_trajectory

# A community small enough to simulate quickly but large enough that the
# entrenchment effect is visible: scarce visits relative to pages.
COMMUNITY = CommunityConfig(
    n_pages=1_000,
    n_users=100,
    monitored_fraction=0.2,
    visits_per_user_per_day=1.0,
    expected_lifetime_days=120.0,
)
SIM_CONFIG = SimulationConfig(warmup_days=360, measure_days=600, mode="stochastic")


@pytest.fixture(scope="module")
def qpc_by_policy():
    policies = {
        "none": RankPromotionPolicy("none", 1, 0.0),
        "selective": RankPromotionPolicy("selective", 1, 0.2),
    }
    return {
        name: measure_qpc(COMMUNITY, policy, SIM_CONFIG, repetitions=3, seed=101)
        for name, policy in policies.items()
    }


class TestHeadlineClaims:
    def test_simulated_promotion_does_not_hurt_qpc(self, qpc_by_policy):
        none = qpc_by_policy["none"]["qpc_normalized"]
        selective = qpc_by_policy["selective"]["qpc_normalized"]
        # Promotion should help; allow a small noise margin so the test stays
        # robust to seed effects while still catching regressions where
        # promotion collapses QPC.
        assert selective > none * 0.9

    def test_simulated_tbp_improves_with_promotion(self):
        config = SimulationConfig(warmup_days=240, measure_days=60,
                                  probe_horizon_days=700)
        tbp_none = measure_tbp(
            COMMUNITY, RankPromotionPolicy("none", 1, 0.0), probe_quality=0.4,
            config=config, repetitions=3, seed=7,
        )
        tbp_selective = measure_tbp(
            COMMUNITY, RankPromotionPolicy("selective", 1, 0.3), probe_quality=0.4,
            config=config, repetitions=3, seed=7,
        )
        # Without promotion the probe typically never becomes popular within
        # the horizon (censored at 700 days); with selective promotion it
        # should cross well before that.
        assert tbp_selective["tbp_days"] < tbp_none["tbp_days"]
        assert tbp_selective["censored_fraction"] < 1.0

    def test_probe_trajectory_rises_faster_with_promotion(self):
        config = SimulationConfig(warmup_days=240, measure_days=60)
        horizon = 240
        with_promotion = popularity_trajectory(
            COMMUNITY, RankPromotionPolicy("selective", 1, 0.3), probe_quality=0.4,
            horizon_days=horizon, config=config, repetitions=3, seed=13,
        )
        without = popularity_trajectory(
            COMMUNITY, RankPromotionPolicy("none", 1, 0.0), probe_quality=0.4,
            horizon_days=horizon, config=config, repetitions=3, seed=13,
        )
        # Compare the area under the popularity curve (exploration benefit).
        assert with_promotion.sum() > without.sum()


class TestAnalysisSimulationAgreement:
    def test_both_paths_agree_promotion_helps(self, qpc_by_policy):
        analysis_none = solve_model(COMMUNITY, RankingSpec.nonrandomized(),
                                    quality_groups=32, seed=0)
        analysis_selective = solve_model(COMMUNITY, RankingSpec.selective(r=0.2, k=1),
                                         quality_groups=32, seed=0)
        analysis_gain = (
            analysis_selective.qpc_normalized() - analysis_none.qpc_normalized()
        )
        simulation_gain = (
            qpc_by_policy["selective"]["qpc_normalized"]
            - qpc_by_policy["none"]["qpc_normalized"]
        )
        assert analysis_gain > 0
        assert simulation_gain > -0.05

    def test_analysis_tbp_ordering_matches_paper(self):
        none = solve_model(COMMUNITY, RankingSpec.nonrandomized(), quality_groups=32, seed=0)
        selective = solve_model(COMMUNITY, RankingSpec.selective(r=0.1, k=1),
                                quality_groups=32, seed=0)
        uniform = solve_model(COMMUNITY, RankingSpec.uniform(r=0.1, k=1),
                              quality_groups=32, seed=0)
        tbp_none = none.tbp(0.4)
        tbp_uniform = uniform.tbp(0.4)
        tbp_selective = selective.tbp(0.4)
        # Paper, Figure 4: selective < uniform < none.
        assert tbp_selective < tbp_uniform < tbp_none

    def test_k2_protects_top_slot_with_small_cost(self):
        k1 = solve_model(COMMUNITY, RankingSpec.selective(r=0.1, k=1),
                         quality_groups=32, seed=0)
        k2 = solve_model(COMMUNITY, RankingSpec.selective(r=0.1, k=2),
                         quality_groups=32, seed=0)
        # Protecting the top result should change QPC only modestly.
        assert abs(k1.qpc_normalized() - k2.qpc_normalized()) < 0.15


class TestEndToEndPublicApi:
    def test_quickstart_flow(self):
        # The README quickstart, condensed: build a community, compare the
        # recommended policy against deterministic ranking.
        from repro import RECOMMENDED_POLICY, compare_policies

        community = CommunityConfig(
            n_pages=300, n_users=60, monitored_fraction=0.25,
            expected_lifetime_days=60.0,
        )
        config = SimulationConfig(warmup_days=120, measure_days=120)
        outcome = compare_policies(
            community,
            {"deterministic": RankPromotionPolicy("none", 1, 0.0),
             "recommended": RECOMMENDED_POLICY},
            config,
            seed=3,
        )
        assert set(outcome) == {"deterministic", "recommended"}
        for values in outcome.values():
            assert 0.0 < values["qpc_normalized"] <= 1.1
