"""Tests for the multi-tenant serving pool and its shared-memory state."""

import numpy as np
import pytest

from repro.community.config import DEFAULT_COMMUNITY
from repro.serving.bench import sample_steady_awareness
from repro.serving.config import ServingConfig, build_pool, build_router
from repro.serving.pool import ServingPool, run_pool_benchmark
from repro.serving.state import (
    PopularityState,
    SharedPopularityState,
    shared_block_nbytes,
    shared_memory_available,
)
from repro.serving.tenancy import TenantSpec, plan_tenancy
from repro.serving.workload import StreamingWorkload, WorkloadConfig, run_stream
from repro.utils.rng import as_rng, derive_seed

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)

COMMUNITY = DEFAULT_COMMUNITY.scaled(300)


def _commit_some(state, rng, batches=5, batch=8):
    for _ in range(batches):
        indices = rng.integers(0, state.n, size=batch)
        visits = np.ones(batch, dtype=float)
        assert state.commit_visits_at(indices, visits, state.version, rng=rng)


class TestPlanTenancy:
    def test_round_robin_assignment(self):
        specs = plan_tenancy(tenants=5, workers=2, seed=0, n_pages=100)
        assert [spec.worker for spec in specs] == [0, 1, 0, 1, 0]
        assert [spec.tenant for spec in specs] == [0, 1, 2, 3, 4]
        assert all(spec.n_pages == 100 for spec in specs)

    def test_seeds_are_derived_and_stable(self):
        first = plan_tenancy(tenants=3, workers=1, seed=7, n_pages=10)
        second = plan_tenancy(tenants=3, workers=1, seed=7, n_pages=10)
        assert [s.seed for s in first] == [s.seed for s in second]
        assert len({s.seed for s in first}) == 3
        assert first[1].seed == derive_seed(7, "tenant-1")

    def test_names_and_validation(self):
        assert TenantSpec(tenant=2, worker=0, seed=1, n_pages=5).name == "tenant-2"
        with pytest.raises(ValueError):
            plan_tenancy(tenants=0, workers=1, seed=0, n_pages=10)
        with pytest.raises(ValueError):
            plan_tenancy(tenants=1, workers=0, seed=0, n_pages=10)


class TestSharedPopularityState:
    @pytest.mark.parametrize("mode", ["fluid", "stochastic"])
    def test_matches_local_state_bit_for_bit(self, mode):
        local = PopularityState.from_config(COMMUNITY, rng=3, mode=mode)
        shared = SharedPopularityState.create(COMMUNITY, rng=3, mode=mode)
        try:
            assert np.array_equal(shared.quality, local.quality)
            local_rng, shared_rng = as_rng(11), as_rng(11)
            _commit_some(local, local_rng)
            _commit_some(shared, shared_rng)
            assert np.array_equal(
                shared.pool.aware_count, local.pool.aware_count
            )
            assert np.array_equal(shared.popularity, local.popularity)
            assert shared.version == local.version
        finally:
            shared.close()
            shared.unlink()

    def test_conflict_rejects_without_mutation(self):
        shared = SharedPopularityState.create(COMMUNITY, rng=0, mode="fluid")
        try:
            before = shared.pool.aware_count.copy()
            stale = shared.version
            shared.bump_version()
            indices = np.array([0, 1, 2])
            visits = np.ones(3, dtype=float)
            assert not shared.commit_visits_at(indices, visits, stale, rng=as_rng(0))
            assert np.array_equal(shared.pool.aware_count, before)
            assert shared.counters()["shared_conflicts"] == 1.0
        finally:
            shared.close()
            shared.unlink()

    def test_attach_sees_owner_commits(self):
        owner = SharedPopularityState.create(COMMUNITY, rng=1, mode="fluid")
        try:
            attached = SharedPopularityState.attach(owner.handle, owner._lock)
            _commit_some(owner, as_rng(4), batches=2)
            assert attached.version == owner.version
            assert np.array_equal(
                attached.pool.aware_count, owner.pool.aware_count
            )
            # The attached side refreshes its popularity view lazily.
            attached.consume_dirty()
            assert np.array_equal(attached.popularity, owner.popularity)
            attached.close()
        finally:
            owner.close()
            owner.unlink()

    def test_close_freezes_a_readable_copy(self):
        shared = SharedPopularityState.create(COMMUNITY, rng=2, mode="fluid")
        _commit_some(shared, as_rng(5), batches=2)
        aware = shared.pool.aware_count.copy()
        version = shared.version
        shared.close()
        shared.unlink()
        assert np.array_equal(shared.pool.aware_count, aware)
        assert shared.version == version

    def test_block_nbytes_covers_header_and_arrays(self):
        assert shared_block_nbytes(10) >= 64 + 10 * 16 + 10


def _reference_router_run(config, spec, batches):
    """Drive an in-process router exactly the way a pool worker does."""
    router = build_router(config, seed=spec.seed)
    generator = as_rng(derive_seed(spec.seed, "serving-warm"))
    for engine in router.engines:
        engine.state.set_awareness(
            sample_steady_awareness(
                engine.state.n, engine.state.pool.monitored_population, generator
            )
        )
    workload = StreamingWorkload(
        WorkloadConfig(feedback_rate=config.feedback_rate),
        seed=derive_seed(spec.seed, "pool-stream"),
    )
    for n_queries in batches:
        run_stream(router, n_queries, workload=workload)
    router.flush_feedback()
    return router


class TestServingPool:
    CONFIG = ServingConfig(n_pages=300, n_shards=2, seed=0, workers=1)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers >= 1"):
            ServingPool(self.CONFIG.replace(workers=0))

    def test_single_worker_matches_in_process_router(self):
        batches = [100, 100]
        pool = build_pool(self.CONFIG, warm=True)
        for n_queries in batches:
            pool.submit(0, n_queries)
        stats = pool.shutdown()
        assert stats["queries"] == float(sum(batches))

        spec = plan_tenancy(1, 1, self.CONFIG.seed, self.CONFIG.n_pages)[0]
        router = _reference_router_run(self.CONFIG, spec, batches)
        for shard, engine in enumerate(router.engines):
            frozen = pool.states[0][shard]
            assert np.array_equal(
                frozen.pool.aware_count, engine.state.pool.aware_count
            )
            assert np.array_equal(frozen.quality, engine.state.quality)
            assert frozen.version == engine.state.version

    def test_single_worker_adaptive_rank_matches_in_process_router(self):
        """A pooled adaptive_rank run is bit-identical to the in-process one.

        After the streaming identity check, an all-pages feedback batch
        pushes every engine over the half-community dirty threshold, so the
        next query provably takes the adaptive full re-sort branch — and
        still serves the exact pages (and maintains the exact order) the
        plain-lexsort reference does.
        """
        config = self.CONFIG.replace(adaptive_rank=True)
        batches = [100, 100]
        pool = build_pool(config, warm=True)
        for n_queries in batches:
            pool.submit(0, n_queries)
        stats = pool.shutdown()
        assert stats["queries"] == float(sum(batches))

        spec = plan_tenancy(1, 1, config.seed, config.n_pages)[0]
        adaptive = _reference_router_run(config, spec, batches)
        plain = _reference_router_run(
            config.replace(adaptive_rank=False), spec, batches
        )
        for shard, engine in enumerate(adaptive.engines):
            frozen = pool.states[0][shard]
            assert np.array_equal(
                frozen.pool.aware_count, engine.state.pool.aware_count
            )
            assert frozen.version == engine.state.version
        # Both reference runs replayed the pool's stream bit-identically,
        # so their engines (and rng states) agree; now force the adaptive
        # full-resort branch and demand it stays invisible downstream.
        for adaptive_engine, plain_engine in zip(
            adaptive.engines, plain.engines
        , strict=True):
            touched = np.arange(adaptive_engine.state.n)
            adaptive_engine.apply_feedback(touched)
            plain_engine.apply_feedback(touched)
            full_sorts = adaptive_engine.full_sorts
            adaptive_page = adaptive_engine.top_k(10)
            plain_page = plain_engine.top_k(10)
            assert adaptive_engine.full_sorts == full_sorts + 1
            assert np.array_equal(adaptive_page, plain_page)
            assert np.array_equal(
                adaptive_engine._order, plain_engine._order
            )
            assert np.array_equal(
                adaptive_engine._tie_key, plain_engine._tie_key
            )

    def test_two_identical_pools_agree(self):
        results = []
        for _ in range(2):
            pool = ServingPool(
                self.CONFIG.replace(tenants=2, workers=2), warm=True
            )
            for tenant in range(2):
                pool.submit(tenant, 80)
            stats = pool.shutdown()
            results.append(
                (
                    stats["queries_tenant_0"],
                    stats["queries_tenant_1"],
                    [s.pool.aware_count.copy() for s in pool.states[0]]
                    + [s.pool.aware_count.copy() for s in pool.states[1]],
                )
            )
        assert results[0][0] == results[1][0]
        assert results[0][1] == results[1][1]
        for left, right in zip(results[0][2], results[1][2], strict=True):
            assert np.array_equal(left, right)

    def test_backpressure_counts_when_inbox_is_full(self):
        pool = ServingPool(self.CONFIG.replace(inbox_capacity=1))
        for _ in range(6):
            pool.submit(0, 50)
        stats = pool.shutdown()
        assert stats["backpressure_events"] >= 1
        assert stats["queries"] == 300.0

    def test_ensure_alive_restarts_dead_worker(self):
        import time

        pool = ServingPool(self.CONFIG, warm=True)
        pool.submit(0, 50)
        victim = pool._workers[0]
        # Let the worker drain the inbox and go idle before killing it, so
        # it is not terminated while holding a shard lock mid-commit.
        deadline = 50
        while not pool._inboxes[0].empty() and deadline:
            time.sleep(0.1)
            deadline -= 1
        time.sleep(1.0)
        victim.terminate()
        victim.join(timeout=10)
        restarted = pool.ensure_alive()
        assert restarted == [0]
        assert pool.worker_restarts == 1
        pool.submit(0, 60)
        stats = pool.shutdown()
        assert stats["worker_restarts"] == 1.0
        # The restarted worker served the post-restart batch over the
        # surviving shared state.
        assert stats["queries"] == 60.0
        assert stats["shared_committed_events"] > 0.0


class TestConcurrentOccWriters:
    CONFIG = ServingConfig(
        n_pages=300, n_shards=2, seed=0, tenants=1, workers=1, clients=3
    )

    def run_clients(self, config, clients, rounds=6, batch=8, sync_rounds=2):
        pool = ServingPool(config, warm=True)
        processes = pool.start_clients(
            clients, rounds=rounds, batch=batch, sync_rounds=sync_rounds
        )
        payloads = pool.join_clients(processes)
        stats = pool.shutdown()
        return pool, payloads, stats

    def test_racing_writers_hit_organic_conflicts_and_lose_nothing(self):
        pool, payloads, stats = self.run_clients(self.CONFIG, clients=3)
        assert len(payloads) == 3
        sent = sum(p["sent_events"] for p in payloads)
        committed = sum(p["committed_events"] for p in payloads)
        leftover = sum(p["dead_letter_events"] for p in payloads)
        # At least one organic conflict: the synchronized rounds guarantee
        # every client held the same expected version, and only one commit
        # per shard can win it.
        assert stats["shared_conflicts"] >= 1
        assert sum(p["conflicts"] for p in payloads) >= 1
        # Zero lost visits: every sent event is committed or parked, and
        # the shared headers agree with the writers' own accounting.
        assert sent == committed + leftover
        assert stats["shared_committed_events"] == committed
        # Redelivery converged: nothing stayed parked.
        assert leftover == 0

    def test_dead_letter_redelivery_converges_with_one_attempt(self):
        config = self.CONFIG.replace(max_attempts=1)
        pool, payloads, stats = self.run_clients(
            config, clients=3, rounds=4, sync_rounds=4
        )
        assert len(payloads) == 3
        # max_attempts=1 means every conflicting batch parks immediately;
        # the redelivery loop must still land all of them.
        assert stats["shared_conflicts"] >= 1
        assert sum(p["redelivery_rounds"] for p in payloads) >= 1
        sent = sum(p["sent_events"] for p in payloads)
        committed = sum(p["committed_events"] for p in payloads)
        assert sum(p["dead_letter_events"] for p in payloads) == 0
        assert sent == committed
        assert stats["shared_committed_events"] == committed

    def test_workers_and_clients_race_on_the_same_shards(self):
        pool = ServingPool(self.CONFIG, warm=True)
        processes = pool.start_clients(2, rounds=6, batch=8)
        for _ in range(3):
            pool.submit(0, 60)
        payloads = pool.join_clients(processes)
        stats = pool.shutdown()
        client_sent = sum(p["sent_events"] for p in payloads)
        client_committed = sum(p["committed_events"] for p in payloads)
        client_leftover = sum(p["dead_letter_events"] for p in payloads)
        total_sent = stats["feedback_events"] + client_sent
        total_committed = stats["worker_committed_events"] + client_committed
        total_leftover = stats["worker_dead_letter_events"] + client_leftover
        assert total_sent == total_committed + total_leftover
        assert stats["shared_committed_events"] == total_committed


class TestRunPoolBenchmark:
    def test_smoke_report_invariants(self):
        report = run_pool_benchmark(
            n_pages=300,
            n_shards=2,
            tenants=2,
            workers=2,
            clients=2,
            n_queries=240,
            batches_per_tenant=2,
            client_rounds=4,
            client_batch=8,
            seed=0,
        )
        assert report["pool_zero_lost"] == 1.0
        assert report["pool_organic_conflict"] == 1.0
        assert report["pool_backpressure_engaged"] == 1.0
        assert report["lost_events"] == 0.0
        assert report["pool_scaling_ratio"] > 0.0
        assert report["queries"] == 480.0
        assert report["queries_tenant_0"] == 240.0
        assert report["queries_tenant_1"] == 240.0

    def test_telemetry_rows_merge_into_report(self):
        from repro.telemetry import TelemetryRecorder

        recorder = TelemetryRecorder(n_shards=2, window=64, label="pool-test")
        report = run_pool_benchmark(
            n_pages=300,
            n_shards=2,
            tenants=1,
            workers=1,
            clients=2,
            n_queries=120,
            batches_per_tenant=2,
            client_rounds=4,
            client_batch=8,
            seed=1,
            telemetry=recorder,
        )
        assert any(key.startswith("telemetry_") for key in report)
        kinds = {row.get("kind") for row in recorder.rows}
        assert "pool_summary" in kinds
        assert "pool_worker" in kinds
        assert "pool_client" in kinds
