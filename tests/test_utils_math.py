"""Tests for repro.utils.mathutils."""

import numpy as np
import pytest

from repro.utils.mathutils import (
    LogQuadraticCurve,
    fit_log_quadratic,
    normalized,
    power_law_weights,
    safe_log,
    zipf_normalization,
)


class TestSafeLog:
    def test_positive_values_unchanged(self):
        assert np.allclose(safe_log([1.0, np.e]), [0.0, 1.0])

    def test_zero_is_clipped_not_inf(self):
        assert np.isfinite(safe_log(0.0))

    def test_negative_is_clipped(self):
        assert np.isfinite(safe_log(-5.0))


class TestZipfNormalization:
    def test_single_term(self):
        assert zipf_normalization(1, 1.5) == pytest.approx(1.0)

    def test_matches_direct_sum(self):
        expected = sum(i ** -1.5 for i in range(1, 101))
        assert zipf_normalization(100, 1.5) == pytest.approx(expected)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            zipf_normalization(0, 1.5)


class TestPowerLawWeights:
    def test_sums_to_one(self):
        assert power_law_weights(50, 1.5).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = power_law_weights(20, 1.5)
        assert np.all(np.diff(weights) < 0)

    def test_rank_ratio_follows_exponent(self):
        weights = power_law_weights(100, 1.5)
        assert weights[0] / weights[3] == pytest.approx(4 ** 1.5)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            power_law_weights(0, 1.5)


class TestNormalized:
    def test_normalizes_to_one(self):
        assert normalized([1.0, 3.0]).sum() == pytest.approx(1.0)

    def test_zero_vector_stays_zero(self):
        assert np.allclose(normalized([0.0, 0.0]), [0.0, 0.0])

    def test_preserves_ratios(self):
        result = normalized([1.0, 2.0])
        assert result[1] / result[0] == pytest.approx(2.0)


class TestLogQuadraticCurve:
    def test_pure_power_law(self):
        # log F = b * log x + c is a power law F = e^c * x^b.
        curve = LogQuadraticCurve(a=0.0, b=2.0, c=0.0)
        assert curve(3.0) == pytest.approx(9.0)

    def test_value_at_zero(self):
        curve = LogQuadraticCurve(a=0.0, b=1.0, c=0.0, value_at_zero=0.5)
        assert curve(0.0) == pytest.approx(0.5)

    def test_vectorized_evaluation(self):
        curve = LogQuadraticCurve(a=0.0, b=1.0, c=0.0, value_at_zero=0.1)
        values = curve(np.array([0.0, 1.0, 2.0]))
        assert values.shape == (3,)
        assert values[0] == pytest.approx(0.1)
        assert values[2] == pytest.approx(2.0)

    def test_coefficients_roundtrip(self):
        curve = LogQuadraticCurve(a=1.0, b=-2.0, c=0.5)
        assert np.allclose(curve.coefficients(), [1.0, -2.0, 0.5])


class TestFitLogQuadratic:
    def test_recovers_power_law(self):
        x = np.geomspace(0.01, 1.0, 30)
        y = 5.0 * x ** 1.7
        curve = fit_log_quadratic(x, y)
        assert curve.a == pytest.approx(0.0, abs=1e-6)
        assert curve.b == pytest.approx(1.7, abs=1e-6)

    def test_recovers_quadratic_coefficients(self):
        x = np.geomspace(0.001, 1.0, 40)
        log_y = 0.3 * np.log(x) ** 2 + 1.2 * np.log(x) - 0.5
        curve = fit_log_quadratic(x, np.exp(log_y))
        assert curve.a == pytest.approx(0.3, abs=1e-6)
        assert curve.b == pytest.approx(1.2, abs=1e-6)
        assert curve.c == pytest.approx(-0.5, abs=1e-6)

    def test_value_at_zero_is_kept(self):
        x = np.geomspace(0.01, 1.0, 10)
        curve = fit_log_quadratic(x, x, value_at_zero=0.123)
        assert curve(0.0) == pytest.approx(0.123)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            fit_log_quadratic([1.0, 2.0], [1.0])

    def test_rejects_too_few_points(self):
        with pytest.raises(ValueError):
            fit_log_quadratic([1.0, 2.0], [1.0, 2.0])

    def test_ignores_nonpositive_points(self):
        x = np.concatenate([[0.0], np.geomspace(0.01, 1.0, 20)])
        y = np.concatenate([[0.0], 2.0 * np.geomspace(0.01, 1.0, 20)])
        curve = fit_log_quadratic(x, y)
        assert curve.b == pytest.approx(1.0, abs=1e-6)
