"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on modern toolchains uses the PEP 517 editable hooks and
needs ``wheel``; on offline machines without it, ``python setup.py develop``
installs the same editable package through the legacy path.  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
