"""Quickstart: compare deterministic ranking with randomized rank promotion.

Builds a small Web community, measures amortized quality-per-click (QPC) and
time-to-become-popular (TBP) for strict popularity ranking and for the
paper's recommended recipe (selective promotion, r = 0.1, k = 1), and prints
a small report.

Run with::

    python examples/quickstart.py
"""

from repro import (
    CommunityConfig,
    RankPromotionPolicy,
    RECOMMENDED_POLICY,
    SimulationConfig,
    measure_qpc,
    measure_tbp,
)
from repro.utils.tables import Table


def main() -> None:
    # A community an order of magnitude smaller than the paper's default so
    # the example finishes in a few seconds; ratios (users per page,
    # monitored fraction, visits per user) follow the paper.
    community = CommunityConfig(
        n_pages=2_000,
        n_users=200,
        monitored_fraction=0.10,
        visits_per_user_per_day=1.0,
        expected_lifetime_days=200.0,
    )
    print(community.describe())

    config = SimulationConfig.for_community(
        community, warmup_lifetimes=3, measure_lifetimes=5, mode="stochastic"
    )
    policies = {
        "no randomization": RankPromotionPolicy(rule="none", k=1, r=0.0),
        "recommended (selective, r=0.1, k=1)": RECOMMENDED_POLICY,
        "selective, r=0.2, k=1": RankPromotionPolicy(rule="selective", k=1, r=0.2),
    }

    table = Table(["ranking method", "normalized QPC", "TBP of a q=0.4 page (days)"],
                  title="Effect of randomized rank promotion")
    for name, policy in policies.items():
        qpc = measure_qpc(community, policy, config, repetitions=3, seed=7)
        tbp = measure_tbp(community, policy, probe_quality=0.4,
                          config=SimulationConfig(warmup_days=config.warmup_days,
                                                  measure_days=60,
                                                  probe_horizon_days=600),
                          repetitions=3, seed=7)
        table.add_row(name, qpc["qpc_normalized"], tbp["tbp_days"])
    print()
    print(table.render())
    print()
    print("Higher QPC and lower TBP are better; TBP capped at the 600-day probe horizon.")
    print("Note: QPC is dominated by whether the few best pages are currently discovered,")
    print("so individual small-community runs are noisy — increase `repetitions` (or the")
    print("measurement window) for publication-quality comparisons.")


if __name__ == "__main__":
    main()
