"""Scenario: rank promotion on a link-based (web-graph) popularity signal.

The paper abstracts popularity into awareness × quality; real engines measure
it from the link graph.  This example drives the same ranking policies on an
explicit evolving web graph: users visit pages according to the ranking, some
visitors link to pages they like, and popularity is recomputed from in-degree
or PageRank.  It shows that the entrenchment effect and the benefit of
selective promotion carry over to the graph-backed substrate.

Run with::

    python examples/graph_substrate.py
"""

from repro import CommunityConfig
from repro.core.promotion import SelectivePromotionRule
from repro.core.rankers import PopularityRanker, RandomizedPromotionRanker
from repro.utils.tables import Table
from repro.webgraph import EvolvingWebGraph, GraphCommunitySimulator, pagerank
from repro.webgraph.generators import preferential_attachment_graph
from repro.webgraph.indegree import indegree_popularity

COMMUNITY = CommunityConfig(
    n_pages=500,
    n_users=100,
    monitored_fraction=0.2,
    visits_per_user_per_day=1.0,
    expected_lifetime_days=100.0,
)


def static_graph_demo() -> None:
    """Show the popularity skew of a synthetic preferential-attachment web graph."""
    edges = preferential_attachment_graph(COMMUNITY.n_pages, out_links=5, rng=0)
    indegree = indegree_popularity(edges, COMMUNITY.n_pages)
    scores = pagerank(edges, COMMUNITY.n_pages)
    print("Synthetic web graph: %d pages, %d links" % (COMMUNITY.n_pages, len(edges)))
    print("  top page holds %.1f%% of all in-links; top 1%% of pages hold %.1f%%"
          % (100.0 * indegree.max() / indegree.sum(),
             100.0 * sum(sorted(indegree, reverse=True)[: COMMUNITY.n_pages // 100]) / indegree.sum()))
    print("  PageRank mass of the top 1%% of pages: %.1f%%"
          % (100.0 * sum(sorted(scores, reverse=True)[: COMMUNITY.n_pages // 100])))
    print()


def evolving_graph_comparison() -> None:
    """Compare deterministic and promoted ranking on the evolving graph."""
    rankers = {
        "popularity (in-degree)": PopularityRanker(),
        "selective promotion (r=0.1)": RandomizedPromotionRanker(
            SelectivePromotionRule(), k=1, r=0.1
        ),
        "selective promotion (r=0.3)": RandomizedPromotionRanker(
            SelectivePromotionRule(), k=1, r=0.3
        ),
    }
    table = Table(["ranking method", "normalized QPC", "links created"],
                  title="Quality-per-click on the evolving web graph")
    for name, ranker in rankers.items():
        simulator = GraphCommunitySimulator(
            COMMUNITY, ranker, seed=4,
            graph=EvolvingWebGraph(n=COMMUNITY.n_pages, links_per_day=50.0),
        )
        outcome = simulator.run(warmup_days=150, measure_days=250)
        table.add_row(name, outcome["qpc_normalized"], outcome["links"])
    print(table.render())
    print()
    print("The feedback loop (rank -> visits -> links -> rank) entrenches early winners; "
          "selective promotion gives newly created pages a path into the link economy.")


def main() -> None:
    static_graph_demo()
    evolving_graph_comparison()


if __name__ == "__main__":
    main()
