"""Scenario: how quickly does a brand-new high-quality page get discovered?

This is the paper's motivating workload: a new page of genuinely high quality
enters a community dominated by entrenched pages.  The example follows the
page's popularity trajectory under three ranking methods — strict popularity
ranking, uniform randomized promotion and selective randomized promotion —
using both the analytical model and the simulator, and reports the time each
method needs to make the page popular.

Run with::

    python examples/new_page_discovery.py
"""

import numpy as np

from repro import CommunityConfig, RankPromotionPolicy, SimulationConfig
from repro.analysis import RankingSpec, solve_model
from repro.simulation import popularity_trajectory
from repro.metrics import time_to_become_popular
from repro.utils.tables import Table

COMMUNITY = CommunityConfig(
    n_pages=2_000,
    n_users=200,
    monitored_fraction=0.10,
    visits_per_user_per_day=1.0,
    expected_lifetime_days=200.0,
)
PROBE_QUALITY = 0.4
HORIZON_DAYS = 400


def analytic_trajectories():
    """Expected popularity trajectories from the solved analytical model."""
    specs = {
        "no randomization": RankingSpec.nonrandomized(),
        "uniform (r=0.2)": RankingSpec.uniform(r=0.2, k=1),
        "selective (r=0.2)": RankingSpec.selective(r=0.2, k=1),
    }
    return {
        name: solve_model(COMMUNITY, spec, quality_groups=48, seed=0)
        .popularity_trajectory(PROBE_QUALITY, HORIZON_DAYS)
        for name, spec in specs.items()
    }


def simulated_trajectories():
    """Average simulated trajectories of an injected probe page."""
    policies = {
        "no randomization": RankPromotionPolicy("none", 1, 0.0),
        "uniform (r=0.2)": RankPromotionPolicy("uniform", 1, 0.2),
        "selective (r=0.2)": RankPromotionPolicy("selective", 1, 0.2),
    }
    config = SimulationConfig(warmup_days=600, measure_days=60)
    return {
        name: popularity_trajectory(
            COMMUNITY, policy, probe_quality=PROBE_QUALITY,
            horizon_days=HORIZON_DAYS, config=config, repetitions=3, seed=11,
        )
        for name, policy in policies.items()
    }


def main() -> None:
    print(COMMUNITY.describe())
    print("Following a fresh page of quality %.2f for %d days...\n"
          % (PROBE_QUALITY, HORIZON_DAYS))

    analytic = analytic_trajectories()
    simulated = simulated_trajectories()

    table = Table(
        ["ranking method", "TBP analysis (days)", "TBP simulation (days)",
         "popularity@100d (sim)"],
        title="Discovery of a new high-quality page",
    )
    times = np.arange(HORIZON_DAYS, dtype=float)
    for name in analytic:
        tbp_analysis = time_to_become_popular(times, analytic[name], PROBE_QUALITY)
        tbp_simulation = time_to_become_popular(times, simulated[name], PROBE_QUALITY)
        table.add_row(
            name,
            "not reached" if tbp_analysis is None else "%.0f" % tbp_analysis,
            "not reached" if tbp_simulation is None else "%.0f" % tbp_simulation,
            "%.3f" % simulated[name][min(100, HORIZON_DAYS - 1)],
        )
    print(table.render())
    print()
    print("Selective promotion should discover the page fastest; without "
          "randomization the page typically stays invisible for most of its lifetime.")


if __name__ == "__main__":
    main()
