"""Scenario: tune the rank-promotion knobs (r and k) for a given community.

A search-engine operator who wants to deploy randomized rank promotion has to
choose the degree of randomization r and the protected prefix k.  This
example sweeps both knobs with the analytical model (cheap) and then
validates the chosen operating point with the simulator (expensive but
faithful), mirroring the paper's Section 6.4 recommendation process.

Run with::

    python examples/community_tuning.py
"""

from repro import CommunityConfig, RankPromotionPolicy, SimulationConfig, measure_qpc
from repro.analysis import RankingSpec, solve_model
from repro.utils.tables import Table

COMMUNITY = CommunityConfig(
    n_pages=2_000,
    n_users=200,
    monitored_fraction=0.10,
    visits_per_user_per_day=1.0,
    expected_lifetime_days=200.0,
)
R_VALUES = (0.0, 0.05, 0.1, 0.2)
K_VALUES = (1, 2, 11)


def analytic_sweep():
    """Normalized QPC for every (k, r) pair, from the analytical model."""
    table = Table(["r"] + ["k=%d" % k for k in K_VALUES],
                  title="Analytic QPC sweep (selective promotion)")
    best = (0.0, 1, -1.0)
    for r in R_VALUES:
        row = [r]
        for k in K_VALUES:
            spec = RankingSpec.nonrandomized() if r == 0 else RankingSpec.selective(r=r, k=k)
            qpc = solve_model(COMMUNITY, spec, quality_groups=48, seed=0).qpc_normalized()
            row.append(qpc)
            if qpc > best[2]:
                best = (r, k, qpc)
        table.add_row(*row)
    print(table.render())
    return best


def validate(r: float, k: int) -> None:
    """Check the chosen operating point with the stochastic simulator."""
    config = SimulationConfig.for_community(COMMUNITY, warmup_lifetimes=3,
                                            measure_lifetimes=5)
    chosen = RankPromotionPolicy("selective", k, r) if r > 0 else RankPromotionPolicy("none", 1, 0.0)
    baseline = RankPromotionPolicy("none", 1, 0.0)
    chosen_qpc = measure_qpc(COMMUNITY, chosen, config, repetitions=3, seed=21)
    baseline_qpc = measure_qpc(COMMUNITY, baseline, config, repetitions=3, seed=21)
    print()
    print("Simulator validation:")
    print("  baseline (no randomization): normalized QPC %.3f +- %.3f"
          % (baseline_qpc["qpc_normalized"], baseline_qpc["qpc_normalized_std"]))
    print("  chosen   (r=%.2f, k=%d):      normalized QPC %.3f +- %.3f"
          % (r, k, chosen_qpc["qpc_normalized"], chosen_qpc["qpc_normalized_std"]))


def main() -> None:
    print(COMMUNITY.describe())
    print()
    best_r, best_k, best_qpc = analytic_sweep()
    print()
    print("Best analytic operating point: r=%.2f, k=%d (normalized QPC %.3f)"
          % (best_r, best_k, best_qpc))
    validate(best_r, best_k)
    print()
    print("The paper's recommendation — selective promotion, r about 0.1, k in {1, 2} — "
          "should be at or near the best analytic point for communities like this one.")


if __name__ == "__main__":
    main()
