"""Scenario: re-run the paper's joke/quotation live study in simulation.

Appendix A of the paper describes a 45-day study on a small entertainment
site: two user groups saw the same rotating pool of joke and quotation pages,
one ranked strictly by funny votes and one with all not-yet-seen items
shuffled in below rank 20.  This example replays that study with simulated
participants and reports the funny-vote ratios (Figure 1 of the paper), plus
a small sensitivity sweep over the promotion start rank.

Run with::

    python examples/joke_site_study.py
"""

import numpy as np

from repro.livestudy import LiveStudyConfig, LiveStudyExperiment
from repro.utils.tables import Table


def run_study(config: LiveStudyConfig, repetitions: int, seed: int):
    """Average funny-vote ratios over several simulated studies."""
    control, treatment = [], []
    for repetition in range(repetitions):
        result = LiveStudyExperiment(config, seed=seed + repetition).run()
        control.append(result.control.funny_ratio)
        treatment.append(result.treatment.funny_ratio)
    return float(np.mean(control)), float(np.mean(treatment))


def main() -> None:
    repetitions = 6

    base = LiveStudyConfig()
    control, treatment = run_study(base, repetitions, seed=0)
    print("Replaying the Appendix A study (%d items, %d users, %d days, %d repetitions)"
          % (base.n_items, base.n_users, base.study_days, repetitions))
    print()
    print("  funny-vote ratio without promotion: %.3f" % control)
    print("  funny-vote ratio with promotion:    %.3f" % treatment)
    print("  improvement:                        %.0f%%  (paper reports ~60%%)"
          % (100.0 * (treatment / control - 1.0)))

    print()
    table = Table(["promotion start rank (k)", "ratio without", "ratio with", "improvement %"],
                  title="Sensitivity to the promotion start rank")
    for start_rank in (6, 21, 51):
        config = LiveStudyConfig(promotion_start_rank=start_rank)
        control, treatment = run_study(config, repetitions, seed=100)
        improvement = 100.0 * (treatment / control - 1.0) if control > 0 else float("nan")
        table.add_row(start_rank, control, treatment, improvement)
    print(table.render())
    print()
    print("Promoting new items too close to the top displaces proven items; too deep "
          "and they are never seen — the paper's choice of rank 21 is a balance.")


if __name__ == "__main__":
    main()
