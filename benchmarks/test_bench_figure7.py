"""Benchmark: Figure 7 — robustness across community types (four panels)."""

from repro.experiments import figure7

from conftest import run_experiment_once


def _check_all_valid(result):
    for series in result.series:
        for value in series.y:
            assert 0.0 <= value <= 1.05


def test_bench_figure7a_community_size(benchmark, bench_scale, bench_seed):
    result = run_experiment_once(benchmark, figure7.run_community_size,
                                 bench_scale, bench_seed)
    _check_all_valid(result)
    assert len(result.get_series("no randomization").y) >= 2


def test_bench_figure7b_page_lifetime(benchmark, bench_scale, bench_seed):
    result = run_experiment_once(benchmark, figure7.run_page_lifetime,
                                 bench_scale, bench_seed,
                                 lifetimes_years=(0.5, 1.5, 3.0))
    _check_all_valid(result)


def test_bench_figure7c_visit_rate(benchmark, bench_scale, bench_seed):
    result = run_experiment_once(benchmark, figure7.run_visit_rate,
                                 bench_scale, bench_seed,
                                 visit_multipliers=(0.2, 1.0, 10.0))
    _check_all_valid(result)
    # Abundant visits should not be worse than scarce visits for any method.
    for series in result.series:
        assert series.y[-1] >= series.y[0] - 0.1


def test_bench_figure7d_user_population(benchmark, bench_scale, bench_seed):
    result = run_experiment_once(benchmark, figure7.run_user_population,
                                 bench_scale, bench_seed,
                                 user_multipliers=(0.5, 1.0, 4.0))
    _check_all_valid(result)
