"""Benchmark: Figure 6 — QPC as both the starting point k and r vary."""

from repro.experiments import figure6

from conftest import run_experiment_once


def test_bench_figure6_k_and_r(benchmark, bench_scale, bench_seed):
    result = run_experiment_once(
        benchmark, figure6.run, bench_scale, bench_seed,
        k_values=(1, 2, 11), r_values=(0.0, 0.2, 0.6),
    )
    # Every measured QPC is a valid normalized value, and randomization at
    # k=1 does not collapse result quality.
    for series in result.series:
        for value in series.y:
            assert 0.0 <= value <= 1.05
    k1 = result.get_series("k=1").y
    assert max(k1) >= k1[0] * 0.9
