"""Benchmark: online serving engine vs full re-rank, across community sizes.

Measures queries/sec and cache hit rate of the sharded serving path at
n_pages in {2k, 20k, 200k}, and checks the headline claim: per-query
``top_k`` latency stays roughly flat while the full-re-rank baseline grows
with n log n, so the speedup must widen with community size — at least 5x
at 200k pages with k = 20.
"""

import pytest

from repro.serving.bench import run_serving_benchmark

from conftest import run_serving_once

COMMUNITY_SIZES = (2_000, 20_000, 200_000)


@pytest.mark.parametrize("n_pages", COMMUNITY_SIZES)
def test_bench_serving_topk(benchmark, bench_seed, n_pages):
    report = run_serving_once(
        benchmark,
        run_serving_benchmark,
        n_pages=n_pages,
        n_queries=1_000,
        k=20,
        n_shards=4,
        cache_capacity=64,
        staleness_budget=4,
        feedback_rate=0.2,
        baseline_queries=10,
        seed=bench_seed,
    )
    assert report["queries"] == 1_000
    assert report["queries_per_second"] > 0
    assert 0.0 <= report["cache_hit_rate"] <= 1.0
    # The serving path must beat one-full-rank-per-query decisively once the
    # community is large; at the paper-plus scale the bar is 5x (observed
    # speedups are orders of magnitude higher, so this is a regression floor,
    # not a tight fit).
    if n_pages >= 200_000:
        assert report["speedup_vs_full_rank"] >= 5.0


def test_bench_serving_cache_effect(benchmark, bench_seed):
    """Caching off: every query recomputes, hit rate is exactly zero."""
    report = run_serving_once(
        benchmark,
        run_serving_benchmark,
        n_pages=20_000,
        n_queries=500,
        k=20,
        n_shards=4,
        cache_capacity=None,
        staleness_budget=0,
        feedback_rate=0.2,
        baseline_queries=5,
        seed=bench_seed,
    )
    assert report["cache_hit_rate"] == 0.0
    assert report["queries_per_second"] > 0
