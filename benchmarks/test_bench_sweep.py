"""Benchmark: lockstep serving-replay sweep vs R independent replays.

Replays one recorded query stream against a grid of serving variants
(page length k, randomization degree r, cache staleness budget, shard
count) through :class:`~repro.serving.sweep.ServingSweep`, and against the
same variants one at a time through the standalone
:func:`~repro.simulation.replay.replay_trace` loop.  Asserts the headline
contract of the sweep engine: **bit-identical per-variant results** (pages,
clicks, cache counters, final popularity state) at a replayed-query
throughput of at least 3x the independent replays at R = 32 variants on
the smoke workload.

The speedup is a same-core, same-process comparison (``n_workers=1``;
construction included on both sides), so it is stable across CI hosts; the
measured value is exported in ``extra_info`` and gated by
``benchmarks/check_regression.py`` against ``benchmarks/baselines``.
"""

import pytest

from repro.serving.sweep import run_sweep_benchmark, variant_grid

from conftest import BENCH_SCALE, BENCH_SEED, run_report_once

#: (n_pages, n_queries) per scale level.
SWEEP_BENCH_SIZES = {
    "smoke": (2_000, 2_400),
    "fast": (5_000, 6_000),
    "paper": (20_000, 12_000),
}

#: Metrics copied into pytest-benchmark ``extra_info`` for the JSON output.
SWEEP_INFO_KEYS = (
    "kernel_backend",
    "n_pages",
    "queries",
    "replicates",
    "sweep_seconds",
    "independent_seconds",
    "queries_per_second_sweep",
    "queries_per_second_independent",
    "speedup_sweep_vs_independent",
    "cache_hit_rate_mean",
    "feedback_events_total",
    "parity_bit_identical",
)

#: Speedup floor asserted at R = 32 (the PR's acceptance bar; the CI gate
#: additionally enforces it against the committed baseline reference).
MIN_SPEEDUP_AT_32 = 3.0


def _sizes():
    return SWEEP_BENCH_SIZES.get(BENCH_SCALE, SWEEP_BENCH_SIZES["smoke"])


def _grid(replicates):
    if replicates == 8:
        return variant_grid(
            ks=(10, 20), rs=(0.0, 0.1), staleness_budgets=(0, 4),
            shard_counts=(1,),
        )
    assert replicates == 32
    return variant_grid()  # 2 ks x 4 rs x 2 budgets x 2 shard counts


@pytest.mark.parametrize("replicates", [8, 32])
def test_bench_sweep_lockstep(benchmark, replicates):
    """Throughput and bit-parity of the sweep at each variant count."""
    n_pages, n_queries = _sizes()
    variants = _grid(replicates)
    assert len(variants) == replicates
    report = run_report_once(
        benchmark,
        run_sweep_benchmark,
        SWEEP_INFO_KEYS,
        n_pages=n_pages,
        n_queries=n_queries,
        variants=variants,
        seed=BENCH_SEED,
        n_workers=1,
    )

    # Bit-identical per-variant results are a hard requirement, not a perf
    # target: any drift between the lockstep engine and the standalone
    # replay fails the bench outright.
    assert report["parity_bit_identical"] == 1.0
    assert report["replicates"] == float(replicates)
    assert report["speedup_sweep_vs_independent"] > 1.0
    if replicates == 32:
        assert report["speedup_sweep_vs_independent"] >= MIN_SPEEDUP_AT_32
