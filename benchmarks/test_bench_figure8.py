"""Benchmark: Figure 8 — mixed surfing and searching."""

from repro.experiments import figure8

from conftest import run_experiment_once


def test_bench_figure8_mixed_surfing(benchmark, bench_scale, bench_seed):
    result = run_experiment_once(
        benchmark, figure8.run, bench_scale, bench_seed, x_values=(0.0, 0.5, 1.0)
    )
    # Absolute QPC stays within the quality range for every surfing mix.
    for series in result.series:
        for value in series.y:
            assert 0.0 <= value <= 0.45
    # At x = 1 every ranking method sees the same surfing-only traffic, so the
    # three curves should be close together.
    finals = [series.y[-1] for series in result.series]
    assert max(finals) - min(finals) < 0.2
