"""Benchmark: chaos replay — recovery correctness under the pinned fault plan.

Replays a recorded query trace at the gated serving benchmark's paper-plus
scale (200k pages) with the robustness layer armed and the repository's
pinned fault plan firing: one mid-run shard crash, an OCC conflict burst,
a stall, and a cache poisoning.  The run is gated on *correctness*, not
just throughput: with the default retry policy nothing may dead-letter,
every crash recovery must restore the shard bit-identically (both against
the pre-crash digest and against an independently-built fault-free
reference replayed to the same point), and the degraded-serve recovery
ratio — the fraction of down-shard queries answered stale rather than
shed — is floored in ``benchmarks/baselines/bench-floor.json``.
"""

from repro.robustness.chaos import run_chaos_benchmark

from conftest import CHAOS_INFO_KEYS, run_report_once


def test_bench_chaos_recovery(benchmark, bench_seed):
    report = run_report_once(
        benchmark,
        run_chaos_benchmark,
        CHAOS_INFO_KEYS,
        n_pages=200_000,
        n_queries=2_000,
        k=20,
        n_shards=4,
        cache_capacity=64,
        staleness_budget=4,
        feedback_rate=0.2,
        seed=bench_seed,
    )
    # The default retry policy must absorb the pinned conflict burst.
    assert report["dead_letter_events"] == 0
    assert report["occ_conflicts"] > 0
    assert report["occ_retries"] > 0
    # Crash recovery restored the shard bit-identically — against its own
    # pre-crash digest and against the fault-free reference replay.
    assert report["recoveries"] >= 1
    assert report["recovery_bit_identical"] == 1.0
    assert report["clean_parity"] == 1.0
    # The outage was served stale, not shed (the ratio is also floored in
    # the benchgate baseline).
    assert report["degraded_serves"] > 0
    assert report["degraded_serve_recovery_ratio"] > 0.0
    assert report["replayed_queries"] == 2_000
    assert report["qps"] > 0
