#!/usr/bin/env python
"""CI benchmark regression gate (CLI wrapper around repro.utils.benchgate).

Usage::

    python benchmarks/check_regression.py \
        --json bench-batch.json bench-serving.json bench-sweep.json \
        --baselines benchmarks/baselines/bench-floor.json \
        --self-test

Compares the ``extra_info`` metrics of pytest-benchmark JSON output against
the committed floors and exits non-zero when any gated metric regresses by
more than the baseline file's tolerance (default 25%), or when a gated
benchmark/metric is missing from the measurement.

``--self-test`` additionally re-runs the comparison with every measured
value halved (an artificial 2x slowdown) and fails unless the gate rejects
that — proving the gate actually bites.

Escape hatch: set ``REPRO_SKIP_BENCH_GATE=1`` (CI does this when a pull
request carries the ``refresh-baselines`` label) to report without failing
while baselines are being refreshed.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.utils.benchgate import run_gate  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", nargs="+", required=True,
        help="pytest-benchmark JSON files to gate",
    )
    parser.add_argument(
        "--baselines", default="benchmarks/baselines/bench-floor.json",
        help="committed baseline floor file",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="also verify the gate fails on an artificial 2x slowdown",
    )
    args = parser.parse_args(argv)

    findings, tolerance = run_gate(args.json, args.baselines)
    print("benchmark regression gate (tolerance %.0f%%):" % (100 * tolerance))
    for finding in findings:
        print("  " + finding.describe())
    failed = [finding for finding in findings if not finding.ok]

    if args.self_test:
        slowed, _ = run_gate(args.json, args.baselines, scale=0.5)
        slow_failures = [finding for finding in slowed if not finding.ok]
        if not slow_failures:
            print("self-test FAILED: a 2x slowdown passed the gate")
            return 2
        print(
            "self-test ok: artificial 2x slowdown rejected "
            "(%d metric(s) below floor)" % len(slow_failures)
        )

    if failed:
        if os.environ.get("REPRO_SKIP_BENCH_GATE") == "1":
            print(
                "REPRO_SKIP_BENCH_GATE=1 — %d regression(s) reported but not "
                "enforced (baseline refresh mode)" % len(failed)
            )
            return 0
        print("%d gated metric(s) regressed beyond tolerance" % len(failed))
        return 1
    print("all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
