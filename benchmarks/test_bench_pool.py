"""Benchmark: multi-tenant serving pool — aggregate-QPS scaling and OCC races.

Hosts several tenant communities behind a process-per-shard
:class:`~repro.serving.pool.ServingPool` whose popularity arrays live in
shared memory, with extra client processes racing real feedback commits
through the OCC path against the workers.  Three gates, all
machine-independent: ``pool_scaling_ratio`` (pool speedup over one worker,
normalized by ``min(workers, cpu_count)``) is floored in
``benchmarks/baselines/bench-floor.json``; ``pool_zero_lost`` asserts every
feedback event sent by any process is accounted committed or parked with
the shared headers agreeing; ``pool_organic_conflict`` asserts the run saw
a genuine inter-process commit race (no fault injection involved).
"""

import pytest

from repro.serving.pool import run_pool_benchmark
from repro.serving.state import shared_memory_available

from conftest import POOL_INFO_KEYS, run_report_once

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)


def test_bench_pool_scaling(benchmark, bench_seed):
    report = run_report_once(
        benchmark,
        run_pool_benchmark,
        POOL_INFO_KEYS,
        n_pages=2_000,
        n_shards=2,
        tenants=2,
        workers=2,
        clients=2,
        n_queries=2_000,
        batches_per_tenant=4,
        client_rounds=6,
        client_batch=16,
        seed=bench_seed,
    )
    # Zero lost visits: worker + client accounting closes, and the shared
    # headers agree with the writers' own commit counts.
    assert report["pool_zero_lost"] == 1.0
    assert report["lost_events"] == 0.0
    # At least one organic OCC conflict from a real inter-process race.
    assert report["pool_organic_conflict"] == 1.0
    assert report["organic_conflicts"] >= 1
    # Bounded inboxes engage backpressure under the saturation burst.
    assert report["pool_backpressure_engaged"] == 1.0
    # Every tenant's queries were served, and the scaling ratio is floored
    # in the benchgate baseline.
    assert report["queries"] == 4_000.0
    assert report["pool_scaling_ratio"] > 0.0
    assert report["client_dead_letter_events"] == 0.0
