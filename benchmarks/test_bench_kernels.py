"""Per-kernel micro-benchmarks for the backend-dispatched kernel layer.

Each benchmark times one kernel of the active backend (selected by
``REPRO_KERNEL_BACKEND``, the CI matrix sets it per leg) against the
*unfused* sequential reference — the per-row/per-lane single-community
code the kernel replaced — on identical inputs, asserts bit parity
between the two paths, and exports the fused-vs-unfused throughput ratio
in ``extra_info``.  The ratios are in-process comparisons of two code
paths doing identical work, so they are machine-independent and safe to
gate: ``benchmarks/baselines/bench-floor.json`` carries their floors and
``check_regression.py`` fails CI when one drops.

When numba is installed, :func:`test_bench_kernel_numba_day_throughput`
additionally measures whole batch-day throughput numba-vs-numpy and
asserts the acceptance bar of the kernel-dispatch PR: the fused backend
must sustain **>= 1.5x** the numpy backend's day throughput on the 1-core
reference container, with bit-identical results.  (Not gated in the
baseline file — it only exists on the numba CI leg.)

Every timed region runs after ``backend.warmup()`` plus one untimed call
of both paths, so JIT compilation never lands inside a measurement.
"""

import time

import numpy as np
import pytest

from repro.community.config import DEFAULT_COMMUNITY
from repro.community.page import awareness_gain
from repro.core.kernels import available_backends, get_backend, use_backend
from repro.core.kernels.numpy_backend import merge_repair
from repro.core.merge import randomized_merge
from repro.core.policy import RankPromotionPolicy
from repro.core.rankers import _deterministic_order
from repro.simulation import BatchSimulator, SimulationConfig
from repro.utils.rng import spawn_rngs
from repro.visits.allocation import allocate_monitored_visits, rank_visit_shares
from repro.visits.attention import PowerLawAttention

from conftest import BENCH_SCALE, BENCH_SEED, run_report_once

#: (R, n) for the (R, n)-shaped kernels, per scale level.
KERNEL_BENCH_SIZES = {
    "smoke": (32, 2_000),
    "fast": (32, 10_000),
    "paper": (64, 20_000),
}

#: (lanes, n, dirty per lane, feedback events per lane) for the sweep-shaped
#: kernels, per scale level.
LANE_BENCH_SIZES = {
    "smoke": (24, 2_000, 40, 200),
    "fast": (24, 10_000, 120, 400),
    "paper": (48, 20_000, 240, 800),
}

REPEATS = 5

KERNEL_INFO_KEYS = (
    "kernel_backend",
    "replicates",
    "n_pages",
    "speedup_rank_day_vs_perrow",
    "speedup_promotion_merge_vs_perrow",
    "speedup_day_tail_vs_perrow",
    "speedup_lane_repair_vs_perlane",
    "speedup_feedback_flush_vs_perlane",
    "speedup_numba_vs_numpy_day",
    "adaptive_vs_full_rank_ratio",
    "fluid_windowed_rank_ratio",
    "windowed_route_rows",
    "windowed_displacement_max",
    "blocked_vs_unblocked_tail_ratio",
    "parity_bit_identical",
)

#: Acceptance bar for the numba backend's whole-day throughput (the
#: kernel-dispatch PR's criterion, asserted on the numba CI leg).
MIN_NUMBA_DAY_SPEEDUP = 1.5

#: Acceptance bar for the adaptive rank_day path on near-sorted fluid days
#: at R=32/n=10k.  Asserted on the numba CI leg, whose fused per-row
#: detection + re-insertion merge turns the O(n log n) argsort into one
#: O(n + d log d) pass; the pure-numpy adaptive path runs the same
#: algorithm as ~a dozen batched array passes, which on the 1-core
#: container is memory-bound at roughly break-even with the full sort (its
#: floor below guards that routing through the hint never regresses).
MIN_ADAPTIVE_RANK_SPEEDUP = 1.5

#: Acceptance bars for the displacement-bounded windowed route on a dense
#: fluid day (every page jitters within a narrow rank band) at R=32/n=10k.
#: The numpy leg's strided block-sort beats the full argsort by >= 1.15x
#: (the bench-floor.json reference, gated with the shared 25% runner
#: tolerance; the in-test hard assert pins "never loses" at 1.0 because
#: the measured ~1.2-1.3x leaves too little margin for a shared runner's
#: worst noise spikes).  The numba leg's fused bounded-insertion pass
#: must hard-beat >= 1.4x.
MIN_WINDOWED_RANK_SPEEDUP_NUMPY = 1.0
MIN_WINDOWED_RANK_SPEEDUP_NUMBA = 1.4

#: The acceptance shape for the adaptive-rank and blocked-tail benches:
#: both effects are regime-dependent (the day tail's temporaries only
#: leave cache at large R*n), so these two benches pin the ISSUE's
#: R=32/n=10k point instead of scaling with REPRO_BENCH_SCALE.
ADAPTIVE_BENCH_SHAPE = (32, 10_000)


def _shape():
    return KERNEL_BENCH_SIZES.get(BENCH_SCALE, KERNEL_BENCH_SIZES["smoke"])


def _lane_shape():
    return LANE_BENCH_SIZES.get(BENCH_SCALE, LANE_BENCH_SIZES["smoke"])


def _best_of(fn, repeats=REPEATS):
    """Best wall time of ``repeats`` runs (one untimed warm-up call first)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _realistic_scores(rng, R, n):
    """Popularity-shaped scores: unique values plus a zero-awareness block.

    This is the tie structure the engines actually see (the big tie run
    sits at popularity zero), and what the batched sort + tie-run repair
    was designed for; a uniformly coarse grid would instead benchmark a
    pathological hundred-runs-per-row regime no workload produces.
    """
    scores = rng.random((R, n))
    scores[rng.random((R, n)) < 0.3] = 0.0
    return scores


def bench_rank_day():
    backend = get_backend()
    backend.warmup()
    rng = np.random.default_rng(BENCH_SEED)
    R, n = _shape()
    scores = _realistic_scores(rng, R, n)

    batched = backend.rank_day(scores, None, "random", spawn_rngs(BENCH_SEED, R))
    perrow = np.stack(
        [
            _deterministic_order(scores[row], None, "random", generator)
            for row, generator in enumerate(spawn_rngs(BENCH_SEED, R))
        ]
    )
    parity = bool(np.array_equal(batched, perrow))

    seq_rngs = spawn_rngs(BENCH_SEED, R)
    batch_rngs = spawn_rngs(BENCH_SEED, R)
    seq_seconds = _best_of(
        lambda: [
            _deterministic_order(scores[row], None, "random", seq_rngs[row])
            for row in range(R)
        ]
    )
    batch_seconds = _best_of(
        lambda: backend.rank_day(scores, None, "random", batch_rngs)
    )
    return {
        "kernel_backend": backend.name,
        "replicates": float(R),
        "n_pages": float(n),
        "parity_bit_identical": 1.0 if parity else 0.0,
        "speedup_rank_day_vs_perrow": seq_seconds / batch_seconds,
    }


def bench_promotion_merge():
    backend = get_backend()
    backend.warmup()
    rng = np.random.default_rng(BENCH_SEED)
    R, n = _shape()
    k, r = 1, 0.2
    perms = np.argsort(-rng.random((R, n)), axis=1)
    mask = rng.random((R, n)) < 0.2

    def perrow(rngs):
        merged = []
        for row in range(R):
            order = perms[row]
            by_rank = mask[row][order]
            merged.append(
                randomized_merge(
                    order[~by_rank], order[by_rank], k, r, rngs[row]
                )
            )
        return np.stack(merged)

    batched = backend.promotion_merge(perms, mask, k, r, spawn_rngs(BENCH_SEED, R))
    parity = bool(np.array_equal(batched, perrow(spawn_rngs(BENCH_SEED, R))))

    seq_rngs = spawn_rngs(BENCH_SEED, R)
    batch_rngs = spawn_rngs(BENCH_SEED, R)
    seq_seconds = _best_of(lambda: perrow(seq_rngs))
    batch_seconds = _best_of(
        lambda: backend.promotion_merge(perms, mask, k, r, batch_rngs)
    )
    return {
        "kernel_backend": backend.name,
        "replicates": float(R),
        "n_pages": float(n),
        "parity_bit_identical": 1.0 if parity else 0.0,
        "speedup_promotion_merge_vs_perrow": seq_seconds / batch_seconds,
    }


def bench_day_tail():
    backend = get_backend()
    backend.warmup()
    rng = np.random.default_rng(BENCH_SEED)
    R, n = _shape()
    rate, m = 25.0, 100
    attention = PowerLawAttention()
    quality = rng.random((R, n))
    aware0 = np.floor(rng.random((R, n)) * m)
    rankings = np.argsort(-(aware0 / m * quality), axis=1)
    rngs = spawn_rngs(BENCH_SEED, R)

    def perrow(aware):
        for row in range(R):
            shares = rank_visit_shares(rankings[row], attention)
            monitored = allocate_monitored_visits(shares, rate, "fluid", rngs[row])
            gained = awareness_gain(aware[row], m, monitored, mode="fluid")
            aware[row] = np.minimum(m, aware[row] + gained)

    def batched(aware):
        backend.day_tail(
            rankings, attention.visit_shares(n), rate, "fluid", rngs, aware, m
        )

    check_seq = aware0.copy()
    check_batch = aware0.copy()
    perrow(check_seq)
    batched(check_batch)
    parity = bool(np.array_equal(check_seq, check_batch))

    aware_seq = aware0.copy()
    aware_batch = aware0.copy()
    seq_seconds = _best_of(lambda: perrow(aware_seq))
    batch_seconds = _best_of(lambda: batched(aware_batch))
    return {
        "kernel_backend": backend.name,
        "replicates": float(R),
        "n_pages": float(n),
        "parity_bit_identical": 1.0 if parity else 0.0,
        "speedup_day_tail_vs_perrow": seq_seconds / batch_seconds,
    }


def _lane_repair_inputs():
    rng = np.random.default_rng(BENCH_SEED)
    lanes, n, dirty_size, _ = _lane_shape()
    orders, pops, dirties = [], [], []
    for _ in range(lanes):
        pop = np.round(rng.random(n), 2)
        order = np.lexsort((rng.random(n), -pop))
        dirty = np.sort(rng.choice(n, size=dirty_size, replace=False))
        pop[dirty] = np.round(rng.random(dirty_size), 2)
        orders.append(order)
        pops.append(pop)
        dirties.append(dirty)
    return orders, pops, dirties


def bench_lane_repair():
    backend = get_backend()
    backend.warmup()
    orders, pops, dirties = _lane_repair_inputs()
    lanes, n, dirty_size, _ = _lane_shape()

    def perlane():
        scratch = None
        repaired = []
        for order, pop, dirty in zip(orders, pops, dirties, strict=True):
            merged, scratch = merge_repair(order, pop, dirty, scratch)
            repaired.append(merged)
        return repaired

    grouped = backend.lane_repair(orders, pops, dirties)
    parity = all(
        np.array_equal(ours, theirs) for ours, theirs in zip(grouped, perlane(), strict=True)
    )

    seq_seconds = _best_of(perlane)
    batch_seconds = _best_of(lambda: backend.lane_repair(orders, pops, dirties))
    return {
        "kernel_backend": backend.name,
        "replicates": float(lanes),
        "n_pages": float(n),
        "parity_bit_identical": 1.0 if parity else 0.0,
        "speedup_lane_repair_vs_perlane": seq_seconds / batch_seconds,
    }


def bench_feedback_flush():
    backend = get_backend()
    backend.warmup()
    rng = np.random.default_rng(BENCH_SEED)
    lanes, n, _, events = _lane_shape()
    m = 100
    quality = rng.random((lanes, n))
    aware0 = np.floor(rng.random((lanes, n)) * m)
    indices = [rng.integers(0, n, size=events) for _ in range(lanes)]
    visits = [rng.random(events) * 3 for _ in range(lanes)]

    def perlane(aware, popularity, dirty):
        for lane in range(lanes):
            touched, inverse = np.unique(indices[lane], return_inverse=True)
            summed = np.zeros(touched.size)
            np.add.at(summed, inverse, visits[lane])
            gained = awareness_gain(aware[lane, touched], m, summed, mode="fluid")
            aware[lane, touched] = np.minimum(m, aware[lane, touched] + gained)
            popularity[lane, touched] = (
                aware[lane, touched] / m
            ) * quality[lane, touched]
            dirty[lane, touched] = True

    def grouped(aware, popularity, dirty):
        keys = np.concatenate(
            [indices[lane] + lane * n for lane in range(lanes)]
        )
        summed_visits = np.concatenate(visits)
        touched, inverse = np.unique(keys, return_inverse=True)
        summed = np.zeros(touched.size)
        np.add.at(summed, inverse, summed_visits)
        backend.feedback_flush(
            aware.ravel(), popularity.ravel(), quality.ravel(), dirty.ravel(),
            touched, summed, m,
        )

    state_seq = (aware0.copy(), np.zeros((lanes, n)), np.zeros((lanes, n), bool))
    state_batch = (aware0.copy(), np.zeros((lanes, n)), np.zeros((lanes, n), bool))
    perlane(*state_seq)
    grouped(*state_batch)
    parity = all(
        np.array_equal(ours, theirs)
        for ours, theirs in zip(state_seq, state_batch, strict=True)
    )

    seq_seconds = _best_of(
        lambda: perlane(aware0.copy(), np.zeros((lanes, n)),
                        np.zeros((lanes, n), bool))
    )
    batch_seconds = _best_of(
        lambda: grouped(aware0.copy(), np.zeros((lanes, n)),
                        np.zeros((lanes, n), bool))
    )
    return {
        "kernel_backend": backend.name,
        "replicates": float(lanes),
        "n_pages": float(n),
        "parity_bit_identical": 1.0 if parity else 0.0,
        "speedup_feedback_flush_vs_perlane": seq_seconds / batch_seconds,
    }


def _near_sorted_fluid_day(rng, R, n):
    """Yesterday's permutation plus today's drifted scores.

    The drift mirrors what leaves a fluid day near-sorted: surviving pages
    grow by a monotone map of their popularity (relative order preserved),
    a small set of pages is promoted/demoted to fresh scores, and a few
    lifecycle replacements reset to popularity zero.
    """
    scores_prev = rng.random((R, n))
    prev_perm = np.argsort(-scores_prev, axis=1)
    scores = scores_prev * 1.02
    moved = max(4, n // 400)
    for row in range(R):
        hot = rng.choice(n, size=moved, replace=False)
        scores[row, hot] = rng.random(moved)
        scores[row, hot[: max(1, moved // 4)]] = 0.0
    return scores, prev_perm


def bench_adaptive_rank():
    """Adaptive (prev_perm hint) vs full-argsort rank_day, with bit parity."""
    backend = get_backend()
    backend.warmup()
    R, n = ADAPTIVE_BENCH_SHAPE
    rng = np.random.default_rng(BENCH_SEED)
    scores, prev_perm = _near_sorted_fluid_day(rng, R, n)

    full = backend.rank_day(scores, None, "random", spawn_rngs(BENCH_SEED, R))
    adaptive = backend.rank_day(
        scores, None, "random", spawn_rngs(BENCH_SEED, R), prev_perm=prev_perm
    )
    parity = bool(np.array_equal(full, adaptive))

    full_rngs = spawn_rngs(BENCH_SEED, R)
    adaptive_rngs = spawn_rngs(BENCH_SEED, R)
    full_seconds = _best_of(
        lambda: backend.rank_day(scores, None, "random", full_rngs)
    )
    adaptive_seconds = _best_of(
        lambda: backend.rank_day(
            scores, None, "random", adaptive_rngs, prev_perm=prev_perm
        )
    )
    return {
        "kernel_backend": backend.name,
        "replicates": float(R),
        "n_pages": float(n),
        "parity_bit_identical": 1.0 if parity else 0.0,
        "adaptive_vs_full_rank_ratio": full_seconds / adaptive_seconds,
    }


def _dense_fluid_day(rng, R, n, scale=1e-4):
    """The fluid steady state at density: everything jitters, nothing travels.

    Unlike :func:`_near_sorted_fluid_day` (a few pages teleport, the rest
    keep exact order — the run-merge route's regime), here *every* page
    wiggles by a multiplicative jitter small enough that displacements stay
    inside a narrow band of yesterday's rank.  This is the regime the
    displacement-bounded windowed route exists for: too many breaks for the
    run-merge heal, but a tight bound for the block/insertion sorts.

    Ranks are scattered over a random page layout: near-sortedness lives in
    *rank space* (reachable only through ``prev_perm``), never in raw column
    order, exactly as in a real community — a tiled pre-sorted base would
    hand the full-argsort baseline an O(n) nearly-sorted-input shortcut no
    workload provides.
    """
    values = np.sort(rng.random(n))[::-1]
    pages = rng.permutation(n)
    scores_prev = np.empty((R, n))
    scores_prev[:, pages] = values
    prev_perm = np.argsort(-scores_prev, axis=1)
    scores = scores_prev * (1.0 + rng.normal(0.0, scale, (R, n)))
    return scores, prev_perm


def bench_fluid_windowed_rank():
    """Windowed-route rank_day vs full argsort on a dense fluid day.

    Timed under the ``index`` tie breaker: fluid jitter leaves the keys
    effectively unique, and the ``random`` breaker's per-day tie-key draw
    adds the same ~milliseconds to *both* legs, diluting the route ratio
    this bench exists to pin.
    """
    from repro.core.kernels.numpy_backend import ROUTE_STATS

    backend = get_backend()
    backend.warmup()
    R, n = ADAPTIVE_BENCH_SHAPE
    rng = np.random.default_rng(BENCH_SEED)
    scores, prev_perm = _dense_fluid_day(rng, R, n)

    full = backend.rank_day(scores, None, "index", spawn_rngs(BENCH_SEED, R))
    ROUTE_STATS.reset()
    adaptive = backend.rank_day(
        scores, None, "index", spawn_rngs(BENCH_SEED, R), prev_perm=prev_perm
    )
    stats = ROUTE_STATS.as_dict()
    parity = bool(np.array_equal(full, adaptive))

    full_rngs = spawn_rngs(BENCH_SEED, R)
    adaptive_rngs = spawn_rngs(BENCH_SEED, R)

    def run_full():
        backend.rank_day(scores, None, "index", full_rngs)

    def run_adaptive():
        backend.rank_day(
            scores, None, "index", adaptive_rngs, prev_perm=prev_perm
        )

    # Interleave the two legs' repeats: a noisy-neighbor stall then hits
    # both mins alike instead of sinking whichever leg it landed on, which
    # is what lets the hard per-leg ratio bars below hold on a shared
    # runner.
    run_full()
    run_adaptive()
    full_seconds = adaptive_seconds = float("inf")
    for _ in range(3 * REPEATS):
        started = time.perf_counter()
        run_full()
        full_seconds = min(full_seconds, time.perf_counter() - started)
        started = time.perf_counter()
        run_adaptive()
        adaptive_seconds = min(adaptive_seconds, time.perf_counter() - started)
    return {
        "kernel_backend": backend.name,
        "replicates": float(R),
        "n_pages": float(n),
        "parity_bit_identical": 1.0 if parity else 0.0,
        "fluid_windowed_rank_ratio": full_seconds / adaptive_seconds,
        "windowed_route_rows": float(stats["rank_route_windowed"]),
        "windowed_displacement_max": float(stats["rank_displacement_max"]),
    }


def bench_blocked_tail():
    """Row-blocked numpy day tail vs the unblocked chain, with bit parity.

    Pinned to the numpy backend on every CI leg (the blocked tail is a
    numpy-backend optimization; the numba backend fuses the tail into JIT
    nests instead), so the gated ratio measures the same two code paths
    everywhere.
    """
    from repro.core.kernels.api import KernelBackend
    from repro.core.kernels.numpy_backend import BACKEND as numpy_backend

    rng = np.random.default_rng(BENCH_SEED)
    R, n = ADAPTIVE_BENCH_SHAPE
    rate, m = 25.0, 100
    attention = PowerLawAttention()
    quality = rng.random((R, n))
    aware0 = np.floor(rng.random((R, n)) * m)
    rankings = np.argsort(-(aware0 / m * quality), axis=1)
    shares_by_rank = attention.visit_shares(n)
    rngs = spawn_rngs(BENCH_SEED, R)

    def unblocked(aware):
        return KernelBackend.day_tail(
            numpy_backend, rankings, shares_by_rank, rate, "fluid", rngs,
            aware, m,
        )

    def blocked(aware):
        return numpy_backend.day_tail(
            rankings, shares_by_rank, rate, "fluid", rngs, aware, m
        )

    check_a, check_b = aware0.copy(), aware0.copy()
    shares_a = unblocked(check_a)
    shares_b = blocked(check_b)
    parity = bool(
        np.array_equal(shares_a, shares_b) and np.array_equal(check_a, check_b)
    )

    aware_a, aware_b = aware0.copy(), aware0.copy()
    unblocked_seconds = _best_of(lambda: unblocked(aware_a))
    blocked_seconds = _best_of(lambda: blocked(aware_b))
    return {
        "kernel_backend": get_backend().name,
        "replicates": float(R),
        "n_pages": float(n),
        "parity_bit_identical": 1.0 if parity else 0.0,
        "blocked_vs_unblocked_tail_ratio": unblocked_seconds / blocked_seconds,
    }


def bench_numba_day_throughput():
    """Whole-day throughput, numba backend vs numpy backend, with parity."""
    R, n = _shape()
    days = 12
    community = DEFAULT_COMMUNITY.scaled(n)
    policy = RankPromotionPolicy("selective", 1, 0.1)
    config = SimulationConfig(warmup_days=0, measure_days=days, mode="fluid",
                              seed=BENCH_SEED)
    seconds = {}
    aware = {}
    for name in ("numpy", "numba"):
        with use_backend(name):
            backend = get_backend()
            backend.warmup()
            # Untimed warm run: touches every kernel at the bench shape.
            warm = BatchSimulator(community, policy.build_ranker(), config,
                                  replicates=R)
            warm.step()
            # Best-of repeats, like every other bench here: one noisy-
            # neighbor stall inside a single timed loop must not flake the
            # hard 1.5x acceptance assert on a shared CI runner.
            best = float("inf")
            for _ in range(3):
                simulator = BatchSimulator(
                    community, policy.build_ranker(), config, replicates=R
                )
                started = time.perf_counter()
                for _ in range(days):
                    simulator.step()
                best = min(best, time.perf_counter() - started)
            seconds[name] = best
            aware[name] = simulator.pool.aware_count.copy()
    parity = bool(np.array_equal(aware["numpy"], aware["numba"]))
    return {
        "kernel_backend": "numba",
        "replicates": float(R),
        "n_pages": float(n),
        "parity_bit_identical": 1.0 if parity else 0.0,
        "speedup_numba_vs_numpy_day": seconds["numpy"] / seconds["numba"],
    }


def test_bench_kernel_rank_day(benchmark):
    report = run_report_once(benchmark, bench_rank_day, KERNEL_INFO_KEYS)
    assert report["parity_bit_identical"] == 1.0
    assert report["speedup_rank_day_vs_perrow"] > 1.0


def test_bench_kernel_promotion_merge(benchmark):
    report = run_report_once(benchmark, bench_promotion_merge, KERNEL_INFO_KEYS)
    assert report["parity_bit_identical"] == 1.0
    assert report["speedup_promotion_merge_vs_perrow"] > 1.0


def test_bench_kernel_day_tail(benchmark):
    report = run_report_once(benchmark, bench_day_tail, KERNEL_INFO_KEYS)
    assert report["parity_bit_identical"] == 1.0
    # The numpy backend's row-blocked tail lifted this from ~0.8-1x (the
    # old unfused chain streamed full (R, n) temporaries through L2 while
    # the per-row reference stayed L1-resident) to ~1.7x on the reference
    # container; the floor stays conservative because a runner whose
    # last-level cache holds the whole working set sees both paths
    # converge.  The numba leg fuses the tail into JIT nests instead.
    assert report["speedup_day_tail_vs_perrow"] > 0.5


def test_bench_kernel_lane_repair(benchmark):
    report = run_report_once(benchmark, bench_lane_repair, KERNEL_INFO_KEYS)
    assert report["parity_bit_identical"] == 1.0
    # The numpy backend's grouped call does the same per-lane work (shared
    # scratch, one dispatch); the floor guards against the grouped path
    # growing overhead.  The numba backend runs it as one JIT loop nest.
    assert report["speedup_lane_repair_vs_perlane"] > 0.7


def test_bench_kernel_feedback_flush(benchmark):
    report = run_report_once(benchmark, bench_feedback_flush, KERNEL_INFO_KEYS)
    assert report["parity_bit_identical"] == 1.0
    assert report["speedup_feedback_flush_vs_perlane"] > 1.0


def test_bench_kernel_adaptive_rank(benchmark):
    """Adaptive rank_day: bit parity everywhere; >=1.5x on the numba leg.

    The ISSUE's acceptance bar (>= 1.5x rank_day throughput on near-sorted
    fluid days at R=32/n=10k) is met by the fused numba adaptive kernel
    and asserted on the numba CI leg; the pure-numpy path runs the same
    merge as batched array passes, which is memory-bound near break-even
    on the 1-core container — its assert (and the gate floor) guards that
    the hint never meaningfully regresses the numpy rank.
    """
    report = run_report_once(benchmark, bench_adaptive_rank, KERNEL_INFO_KEYS)
    assert report["parity_bit_identical"] == 1.0
    if report["kernel_backend"] == "numba":
        assert report["adaptive_vs_full_rank_ratio"] >= MIN_ADAPTIVE_RANK_SPEEDUP
    else:
        assert report["adaptive_vs_full_rank_ratio"] > 0.5


def test_bench_kernel_fluid_windowed_rank(benchmark):
    """Windowed route: bit parity + the ISSUE's per-leg speedup bars.

    The R=32/n=10k dense fluid day must take the windowed route on every
    row (the bench is a specification of the regime, not just a timing),
    stay bit-identical to the full sort, and beat it by >= 1.15x through
    the numpy strided block-sort and >= 1.4x through the numba fused
    bounded-insertion pass.  bench-floor.json gates the ratio in CI.
    """
    report = run_report_once(
        benchmark, bench_fluid_windowed_rank, KERNEL_INFO_KEYS
    )
    assert report["parity_bit_identical"] == 1.0
    assert report["windowed_route_rows"] == float(ADAPTIVE_BENCH_SHAPE[0])
    if report["kernel_backend"] == "numba":
        assert (
            report["fluid_windowed_rank_ratio"]
            >= MIN_WINDOWED_RANK_SPEEDUP_NUMBA
        )
    else:
        assert (
            report["fluid_windowed_rank_ratio"]
            >= MIN_WINDOWED_RANK_SPEEDUP_NUMPY
        )


def test_bench_kernel_blocked_tail(benchmark):
    """Row-blocked day tail must beat the unblocked chain, bit-identically."""
    report = run_report_once(benchmark, bench_blocked_tail, KERNEL_INFO_KEYS)
    assert report["parity_bit_identical"] == 1.0
    # ~1.7-1.8x on the 1-core reference container; on a runner whose L3
    # holds the whole (R, n) working set the two paths converge, so the
    # hard assert only pins "blocking never loses" and the gate floor
    # (bench-floor.json) watches the ratio itself.
    assert report["blocked_vs_unblocked_tail_ratio"] > 0.85


@pytest.mark.skipif(
    "numba" not in available_backends(),
    reason="numba not installed (optional backend)",
)
def test_bench_kernel_numba_day_throughput(benchmark):
    """Acceptance bar: fused numba day >= 1.5x numpy day, bit-identical."""
    report = run_report_once(
        benchmark, bench_numba_day_throughput, KERNEL_INFO_KEYS
    )
    assert report["parity_bit_identical"] == 1.0
    assert report["speedup_numba_vs_numpy_day"] >= MIN_NUMBA_DAY_SPEEDUP
