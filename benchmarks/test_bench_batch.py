"""Batch simulation engine throughput: page-days/sec vs the replicate loop.

Runs the same fluid-mode measurement on the paper's default community
through the vectorized :class:`~repro.simulation.batch.BatchSimulator` and
the looped sequential :class:`~repro.simulation.engine.Simulator`, at
R in {8, 32, 128} replicates, and asserts the parity contract (per-replicate
QPC bit-identical between the engines at equal seeds).

Speedup notes, measured on the 1-core reference container: the batch engine
sustains ~3.5-4x the sequential page-days/sec at R = 32 on the default
community (n = 10 000).  The gap to the ideal is bounded by work both
engines share bit-for-bit at C speed — the per-replicate promotion-pool
shuffle, the awareness `pow`, and the parity-mandated per-replicate RNG
draws — plus the batched argsort; with zero batching overhead the ceiling
on this hardware is ~8.5x.  The assertion below uses a conservative floor
so CI noise cannot flake it; the measured speedup is exported in
``extra_info`` (and printed) for tracking.
"""

import pytest

from repro.community.config import DEFAULT_COMMUNITY
from repro.simulation.bench import run_simulation_benchmark

from conftest import BENCH_SCALE, BENCH_SEED, run_report_once

#: Simulated days (warm-up, measurement) per scale level.
BATCH_BENCH_DAYS = {
    "smoke": (10, 15),
    "fast": (25, 50),
    "paper": (60, 120),
}

#: Metrics copied into pytest-benchmark ``extra_info`` for the JSON output.
BATCH_INFO_KEYS = (
    "kernel_backend",
    "n_pages",
    "replicates",
    "baseline_replicates",
    "days_total",
    "pagedays_per_second_batch",
    "pagedays_per_second_sequential",
    "speedup_batch_vs_sequential",
    "parity_bit_identical",
)

#: Conservative speedup floor asserted at R = 32 (see module docstring).
MIN_SPEEDUP_AT_32 = 2.0


def _days():
    return BATCH_BENCH_DAYS.get(BENCH_SCALE, BATCH_BENCH_DAYS["smoke"])


@pytest.mark.parametrize("replicates", [8, 32, 128])
def test_bench_batch_pagedays(benchmark, replicates):
    """Throughput and parity of the batch engine at each replicate count."""
    warmup_days, measure_days = _days()
    report = run_report_once(
        benchmark,
        run_simulation_benchmark,
        BATCH_INFO_KEYS,
        community=DEFAULT_COMMUNITY,
        replicates=replicates,
        warmup_days=warmup_days,
        measure_days=measure_days,
        mode="fluid",
        seed=BENCH_SEED,
        # Pin single-process: run_batch(n_workers=None) now auto-shards from
        # os.cpu_count(), which would make the gated speedup ratio depend on
        # the runner's core count instead of the engine's vectorization.
        n_workers=1,
    )

    assert report["parity_bit_identical"] == 1.0
    assert report["speedup_batch_vs_sequential"] > 1.0
    if replicates == 32:
        assert report["speedup_batch_vs_sequential"] >= MIN_SPEEDUP_AT_32
