"""Benchmark: Figure 3 — steady-state awareness distribution of top pages."""

from repro.experiments import figure3

from conftest import run_experiment_once


def test_bench_figure3_awareness_distribution(benchmark, bench_scale, bench_seed):
    result = run_experiment_once(benchmark, figure3.run, bench_scale, bench_seed)
    baseline = result.series[0]
    promoted = result.series[1]
    # Shape check: selective promotion moves probability mass from the lowest
    # awareness bin toward the highest one.
    assert promoted.y[0] <= baseline.y[0]
    assert promoted.y[-1] >= baseline.y[-1]
