"""Benchmark: Figure 4 — popularity evolution and TBP vs degree of randomization."""

import numpy as np

from repro.experiments import figure4

from conftest import run_experiment_once


def test_bench_figure4a_popularity_evolution(benchmark, bench_scale, bench_seed):
    result = run_experiment_once(benchmark, figure4.run_panel_a, bench_scale, bench_seed)
    none = np.array(result.get_series("no randomization").y)
    selective = np.array(result.get_series("selective randomization").y)
    uniform = np.array(result.get_series("uniform randomization").y)
    # Shape check: promotion accelerates popularity growth, selective most.
    assert selective.sum() >= uniform.sum() >= none.sum()


def test_bench_figure4b_tbp_sweep(benchmark, bench_scale, bench_seed):
    result = run_experiment_once(
        benchmark, figure4.run_panel_b, bench_scale, bench_seed,
        r_values=(0.0, 0.1, 0.2),
    )
    selective = result.get_series("selective (analysis)").y
    uniform = result.get_series("uniform (analysis)").y
    # Shape check: TBP decreases with r, and selective is at least as fast as
    # uniform at the largest r.
    assert selective[-1] <= selective[0]
    assert selective[-1] <= uniform[-1] + 1e-9
