"""Benchmark: Figure 1 — live-study funny-vote ratios with/without promotion."""

from repro.experiments import figure1

from conftest import run_experiment_once


def test_bench_figure1_live_study(benchmark, bench_scale, bench_seed):
    result = run_experiment_once(benchmark, figure1.run, bench_scale, bench_seed)
    series = result.get_series("funny-vote ratio")
    without_promotion, with_promotion = series.y
    # Shape check from the paper: promotion improves the funny-vote ratio.
    assert with_promotion > without_promotion
