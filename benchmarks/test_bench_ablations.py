"""Ablation benchmarks beyond the paper's figures.

These exercise the design choices DESIGN.md calls out: the promotion rule
spectrum (none / uniform / selective / age-based / popularity-threshold), the
related-work baseline rankers, and the graph-backed popularity substrate.
"""

import numpy as np
import pytest

from repro.baselines import AgeWeightedRanker, DerivativeForecastRanker
from repro.community import CommunityConfig
from repro.core.policy import RankPromotionPolicy
from repro.core.promotion import (
    AgeThresholdPromotionRule,
    PopularityThresholdPromotionRule,
    SelectivePromotionRule,
)
from repro.core.rankers import PopularityRanker, RandomizedPromotionRanker
from repro.simulation import SimulationConfig, Simulator, measure_qpc
from repro.webgraph.evolution import EvolvingWebGraph, GraphCommunitySimulator

COMMUNITY = CommunityConfig(
    n_pages=800, n_users=80, monitored_fraction=0.25,
    visits_per_user_per_day=1.0, expected_lifetime_days=100.0,
)
CONFIG = SimulationConfig(warmup_days=300, measure_days=400, mode="stochastic")


def _qpc_for_ranker(ranker, seed=0):
    simulator = Simulator(COMMUNITY, ranker, CONFIG.with_seed(seed))
    return simulator.run().qpc_normalized


def test_bench_promotion_rule_spectrum(benchmark):
    """Compare promotion rules under the same merge parameters."""
    rules = {
        "selective": SelectivePromotionRule(),
        "age<60d": AgeThresholdPromotionRule(max_age_days=60.0),
        "popularity<0.01": PopularityThresholdPromotionRule(threshold=0.01),
    }

    def run():
        return {
            name: _qpc_for_ranker(RandomizedPromotionRanker(rule, k=1, r=0.2), seed=5)
            for name, rule in rules.items()
        }

    values = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    for name, value in values.items():
        print("  promotion rule %-18s normalized QPC %.4f" % (name, value))
    for value in values.values():
        assert 0.0 < value <= 1.05


def test_bench_related_work_baselines(benchmark):
    """Age-weighted and derivative-forecast baselines vs plain popularity."""

    def run():
        results = {
            "popularity": _qpc_for_ranker(PopularityRanker(), seed=9),
            "age-weighted": _qpc_for_ranker(AgeWeightedRanker(tau_days=60.0), seed=9),
        }
        simulator = Simulator(
            COMMUNITY, DerivativeForecastRanker(horizon_days=60.0),
            CONFIG.with_seed(9), history_length=14,
        )
        results["derivative-forecast"] = simulator.run().qpc_normalized
        return results

    values = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    for name, value in values.items():
        print("  baseline %-20s normalized QPC %.4f" % (name, value))
    for value in values.values():
        assert 0.0 < value <= 1.05


def test_bench_graph_substrate(benchmark):
    """Randomized promotion on the link-based (graph) popularity substrate."""
    community = CommunityConfig(
        n_pages=300, n_users=60, monitored_fraction=0.2,
        expected_lifetime_days=80.0,
    )

    def run():
        outcomes = {}
        for name, ranker in (
            ("popularity", PopularityRanker()),
            ("selective r=0.2", RandomizedPromotionRanker(SelectivePromotionRule(), k=1, r=0.2)),
        ):
            simulator = GraphCommunitySimulator(
                community, ranker, seed=3,
                graph=EvolvingWebGraph(n=community.n_pages, links_per_day=40.0),
            )
            outcomes[name] = simulator.run(warmup_days=80, measure_days=120)
        return outcomes

    outcomes = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    for name, outcome in outcomes.items():
        print("  graph substrate %-18s normalized QPC %.4f (links=%d)"
              % (name, outcome["qpc_normalized"], outcome["links"]))
    for outcome in outcomes.values():
        assert outcome["qpc_normalized"] > 0.0


def test_bench_simulator_throughput(benchmark):
    """Raw simulator stepping rate at the paper's default community size."""
    paper = CommunityConfig()
    simulator = Simulator(
        paper, RankPromotionPolicy("selective", 1, 0.1).build_ranker(),
        SimulationConfig(warmup_days=1, measure_days=1, seed=0),
    )

    def run_steps():
        for _ in range(30):
            simulator.step()

    benchmark(run_steps)
