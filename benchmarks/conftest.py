"""Benchmark harness configuration.

Each benchmark module regenerates the data behind one figure of the paper.
By default the drivers run at the ``smoke`` scale so the whole harness
finishes quickly; set ``REPRO_BENCH_SCALE=fast`` (or ``paper``) to regenerate
the figures at larger scales, and run with ``pytest -s`` to see the rendered
series next to the timings.  EXPERIMENTS.md records reference output.
"""

import os

import pytest

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def bench_scale():
    """Scale level for all benchmark runs (smoke unless overridden)."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_seed():
    """Root seed for all benchmark runs."""
    return BENCH_SEED


def run_experiment_once(benchmark, driver, scale, seed, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark timing."""
    result = benchmark.pedantic(
        lambda: driver(scale=scale, seed=seed, **kwargs), iterations=1, rounds=1
    )
    print()
    print(result.render())
    return result
