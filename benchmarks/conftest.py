"""Benchmark harness configuration.

Each figure benchmark regenerates the data behind one figure of the paper;
the serving benchmarks drive the online engine under a streaming query
workload; the batch and sweep benchmarks measure the vectorized engines
against their sequential/independent baselines.  By default the drivers
run at the ``smoke`` scale so the whole harness finishes quickly; set
``REPRO_BENCH_SCALE=fast`` (or ``paper``) to regenerate the figures at
larger scales, and run with ``pytest -s`` to see the rendered series next
to the timings.  EXPERIMENTS.md records reference output.

All benchmarks report through pytest-benchmark, so one
``--benchmark-json=out.json`` run produces a single result file: figure
benchmarks record their scale/seed, serving/batch/sweep benchmarks
additionally record their throughput, cache and speedup metrics in each
entry's ``extra_info``.  CI gates those metrics against the committed
floors in ``benchmarks/baselines/`` via ``benchmarks/check_regression.py``.
"""

import os

import pytest

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

#: Serving metrics copied into pytest-benchmark ``extra_info`` (and thus the
#: shared ``--benchmark-json`` output) when present in a stats dictionary.
SERVING_INFO_KEYS = (
    "kernel_backend",
    "n_pages_total",
    "k",
    "queries",
    "queries_per_second",
    "latency_seconds",
    "baseline_latency_seconds",
    "speedup_vs_full_rank",
    "cache_hit_rate",
    "cache_hits",
    "cache_misses",
    "cache_stale_evictions",
    "feedback_events",
    "flushes",
    "flush_committed",
    "flush_conflicts",
    "flush_retries",
    "flush_dead_letter_events",
    "flush_dropped_events",
)

#: Chaos metrics copied into ``extra_info`` for the chaos recovery
#: benchmark: recovery correctness gates plus the fault/degradation
#: accounting that explains a run.
CHAOS_INFO_KEYS = (
    "kernel_backend",
    "n_pages",
    "n_queries",
    "n_shards",
    "qps",
    "replayed_queries",
    "shed_queries",
    "degraded_serves",
    "degraded_serve_fraction",
    "degraded_serve_recovery_ratio",
    "load_sheds",
    "occ_conflicts",
    "occ_retries",
    "dead_letter_batches",
    "dead_letter_events",
    "recoveries",
    "recovery_seconds",
    "replayed_entries",
    "recovery_bit_identical",
    "clean_parity",
    "flush_committed",
    "flush_conflicts",
    "flush_retries",
    "flush_dropped_events",
)

#: Pool metrics copied into ``extra_info`` for the multi-tenant serving
#: pool benchmark: the machine-independent scaling ratio plus the OCC
#: invariant bits (organic conflicts, zero lost visits, backpressure) and
#: the accounting that explains them.
POOL_INFO_KEYS = (
    "kernel_backend",
    "tenants",
    "workers",
    "clients",
    "n_pages",
    "n_shards",
    "queries",
    "queries_per_second",
    "qps_single_worker",
    "pool_scaling_ratio",
    "pool_organic_conflict",
    "pool_zero_lost",
    "pool_backpressure_engaged",
    "lost_events",
    "organic_conflicts",
    "client_sent_events",
    "client_committed_events",
    "client_conflicts",
    "client_dead_letter_events",
    "worker_feedback_events",
    "worker_committed_events",
    "worker_dead_letter_events",
    "shared_committed_events",
    "shared_conflicts",
    "backpressure_events",
    "worker_restarts",
)

#: Dynamic ``extra_info`` key prefixes: per-shard throughput and the
#: telemetry end-of-run snapshot (shard count and span names vary per run,
#: so these are matched by prefix instead of being enumerated).
SERVING_INFO_PREFIXES = (
    "qps_shard_",
    "queries_shard_",
    "queries_tenant_",
    "telemetry_",
)


@pytest.fixture(scope="session")
def bench_scale():
    """Scale level for all benchmark runs (smoke unless overridden)."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_seed():
    """Root seed for all benchmark runs."""
    return BENCH_SEED


def run_experiment_once(benchmark, driver, scale, seed, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark timing."""
    result = benchmark.pedantic(
        lambda: driver(scale=scale, seed=seed, **kwargs), iterations=1, rounds=1
    )
    benchmark.extra_info.update({"scale": scale, "seed": seed})
    print()
    print(result.render())
    return result


def run_report_once(benchmark, driver, info_keys, **kwargs):
    """Run a metrics-dict benchmark driver once; emit its metrics.

    ``driver`` must return a flat metrics dictionary; the keys named in
    ``info_keys`` land in the benchmark entry's ``extra_info`` so they
    appear in the shared ``--benchmark-json`` output, and are printed for
    ``pytest -s`` runs.
    """
    report = benchmark.pedantic(lambda: driver(**kwargs), iterations=1, rounds=1)
    selected = {key: report[key] for key in info_keys if key in report}
    for key in sorted(report):
        if key.startswith(SERVING_INFO_PREFIXES):
            selected[key] = report[key]
    benchmark.extra_info.update(selected)
    print()
    for key in selected:
        print("%s: %s" % (key, selected[key]))
    return report


def run_serving_once(benchmark, driver, **kwargs):
    """Run a serving benchmark once; emit its metrics into the JSON output.

    ``driver`` must return a flat metrics dictionary (as
    :func:`repro.serving.bench.run_serving_benchmark` does); the serving
    keys land in the benchmark entry's ``extra_info`` so queries/sec and
    cache hit rate appear in the same ``--benchmark-json`` file as the
    figure benchmarks.
    """
    return run_report_once(benchmark, driver, SERVING_INFO_KEYS, **kwargs)
