"""Benchmark: Figure 2 — exploration/exploitation trade-off trajectories."""

from repro.experiments import figure2

from conftest import run_experiment_once


def test_bench_figure2_tradeoff(benchmark, bench_scale, bench_seed):
    result = run_experiment_once(benchmark, figure2.run, bench_scale, bench_seed)
    without = result.get_series("without rank promotion")
    with_promo = result.get_series("with rank promotion")
    # Early in the page's lifetime promotion must give at least as many visits
    # (exploration benefit); the note records the two shaded areas.
    assert with_promo.y[0] >= without.y[0]
    assert float(result.notes["exploration_benefit_visits"]) > 0.0
