"""Benchmark: telemetry recorder overhead on the pinned serving stream.

Runs the identical serving stream with the null recorder and with a live
windowed :class:`~repro.telemetry.TelemetryRecorder` (kernel spans
installed), interleaved best-of-3, and reports the enabled/disabled QPS
ratio.  The regression gate floors ``telemetry_overhead_ratio`` in
``benchmarks/baselines/bench-floor.json`` — the observability layer's
"zero overhead when disabled, cheap when enabled" contract is enforced,
not assumed.  The run also asserts bit-identical router stats between the
two passes: recording must never perturb serving.
"""

from repro.serving.bench import measure_telemetry_overhead

from conftest import run_report_once

TELEMETRY_INFO_KEYS = (
    "kernel_backend",
    "n_pages",
    "queries",
    "telemetry_window",
    "qps_disabled",
    "qps_enabled",
    "telemetry_overhead_ratio",
    "overhead_us_per_query",
    "parity_bit_identical",
)


def test_bench_telemetry_overhead(benchmark, bench_seed):
    # The shape is the gated serving benchmark's paper-plus scale
    # (test_bench_serving_topk[200000]), so the ratio and the serving
    # floors describe the same pinned workload.
    report = run_report_once(
        benchmark,
        measure_telemetry_overhead,
        TELEMETRY_INFO_KEYS,
        n_pages=200_000,
        n_queries=1_000,
        k=20,
        n_shards=4,
        telemetry_window=1024,
        seed=bench_seed,
    )
    # A live recorder must not change a single served page or counter.
    assert report["parity_bit_identical"] == 1.0
    # Generous in-test bound so shared runners don't flake the suite; the
    # real floor (0.95, i.e. <=5% overhead) lives in the benchgate baseline.
    assert report["telemetry_overhead_ratio"] > 0.5
    assert report["qps_disabled"] > 0
