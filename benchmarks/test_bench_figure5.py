"""Benchmark: Figure 5 — QPC vs degree of randomization (analysis + simulation)."""

from repro.experiments import figure5

from conftest import run_experiment_once


def test_bench_figure5_qpc_sweep(benchmark, bench_scale, bench_seed):
    result = run_experiment_once(
        benchmark, figure5.run, bench_scale, bench_seed, r_values=(0.0, 0.1, 0.2)
    )
    selective = result.get_series("selective (analysis)").y
    uniform = result.get_series("uniform (analysis)").y
    # Shape check from the paper: a moderate dose of randomization increases
    # QPC, and selective promotion dominates uniform promotion.
    assert selective[-1] > selective[0]
    assert selective[-1] >= uniform[-1] - 1e-9
    for value in selective + uniform:
        assert 0.0 <= value <= 1.05
